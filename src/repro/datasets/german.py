"""Synthetic German Credit data (UCI schema, paper §6.1).

The paper reports that German Credit "is biased toward older individuals and
considers them less likely to be characterized as high credit risks", and its
Table 1 explanations pin the bias on coherent subgroups — most prominently
older females, and older males whose credit history is spotless.  The
generator plants exactly those mechanisms:

* labels depend on legitimate signals (savings, credit amount, duration,
  employment length, credit history);
* **older females** (``age >= 45 & gender = Female``) are labelled good
  credit risks at a strongly inflated rate;
* **older males with all credits paid back duly** get a similar boost;
* a young-skewed subgroup (``debtors = None & employment = [1,4) &
  installment_rate = 4 & residence = 2``) is labelled *bad* at an inflated
  rate, the third bias source of Table 1.

Protected attribute: ``age`` with the privileged group ``age >= 45``
(matching the age split the paper's explanations use).  Favorable label: 1
(good credit).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.datasets._synth import bernoulli, categorical
from repro.datasets.base import Dataset, ProtectedGroup
from repro.tabular import Table, read_csv
from repro.utils.rng import ensure_rng

_PROTECTED = ProtectedGroup(attribute="age", privileged_threshold=45.0)

_CREDIT_HISTORY = [
    "No credits taken",
    "All credits paid back duly",
    "Existing credits paid back duly",
    "Delay in paying off",
    "Critical account",
]
_PURPOSE = ["Car", "Furniture", "Radio/TV", "Education", "Business"]
_SAVINGS = ["<100", "100-500", "500-1000", ">=1000"]
_EMPLOYMENT = ["Unemployed", "[0,1) years", "[1,4) years", "[4,7) years", ">=7 years"]
_STATUS = ["<0", "0-200", ">=200", "No account"]
_DEBTORS = ["None", "Co-applicant", "Guarantor"]
_PROPERTY = ["Real estate", "Savings agreement", "Car", "Unknown"]
_OTHER_INSTALLMENT = ["Bank", "Stores", "None"]
_HOUSING = ["Own", "Rent", "Free"]
_JOB = ["Unskilled", "Skilled", "Management", "Unemployed"]


def load_german(
    n_rows: int = 1000,
    seed: int | np.random.Generator | None = 0,
    bias_strength: float = 1.0,
    csv_path: str | Path | None = None,
) -> Dataset:
    """Generate (or load) the German Credit dataset.

    Parameters
    ----------
    n_rows:
        Number of rows to generate (UCI original: 1,000).
    seed:
        RNG seed for reproducibility.
    bias_strength:
        Scales the planted age-bias terms; 0 yields a (nearly) fair dataset,
        useful for ablations and tests.
    csv_path:
        If given, load the real data from CSV instead of generating.  The
        file must contain the columns produced by this generator plus a
        ``credit_risk`` label column with values 0/1.
    """
    if csv_path is not None:
        return _from_csv(csv_path)
    rng = ensure_rng(seed)
    n = int(n_rows)
    if n < 50:
        raise ValueError(f"n_rows must be >= 50 for a usable dataset, got {n}")

    age = np.clip(rng.normal(38, 12, n).round(), 19, 75)
    gender = categorical(rng, n, ["Male", "Female"], [0.62, 0.38])
    status = categorical(rng, n, _STATUS, [0.27, 0.27, 0.06, 0.40])
    duration = np.clip(rng.gamma(3.0, 7.0, n).round(), 4, 72)
    credit_history = categorical(rng, n, _CREDIT_HISTORY, [0.04, 0.30, 0.53, 0.09, 0.04])
    purpose = categorical(rng, n, _PURPOSE, [0.35, 0.18, 0.28, 0.10, 0.09])
    amount = np.clip(rng.lognormal(7.9, 0.8, n).round(), 250, 20000)
    savings = categorical(rng, n, _SAVINGS, [0.60, 0.21, 0.11, 0.08])
    employment = categorical(rng, n, _EMPLOYMENT, [0.06, 0.17, 0.34, 0.26, 0.17])
    installment_rate = rng.choice([1.0, 2.0, 3.0, 4.0], size=n, p=[0.14, 0.23, 0.16, 0.47])
    debtors = categorical(rng, n, _DEBTORS, [0.82, 0.09, 0.09])
    residence = rng.choice([1.0, 2.0, 3.0, 4.0], size=n, p=[0.13, 0.31, 0.15, 0.41])
    prop = categorical(rng, n, _PROPERTY, [0.28, 0.23, 0.33, 0.16])
    other_installment = categorical(rng, n, _OTHER_INSTALLMENT, [0.14, 0.05, 0.81])
    housing = categorical(rng, n, _HOUSING, [0.71, 0.18, 0.11])
    existing_credits = rng.choice([1.0, 2.0, 3.0, 4.0], size=n, p=[0.63, 0.31, 0.04, 0.02])
    job = categorical(rng, n, _JOB, [0.20, 0.63, 0.15, 0.02])
    num_liable = rng.choice([1.0, 2.0], size=n, p=[0.84, 0.16])
    telephone = categorical(rng, n, ["Yes", "None"], [0.40, 0.60])
    foreign_worker = categorical(rng, n, ["Yes", "No"], [0.96, 0.04])

    # Legitimate credit-risk signal.
    logits = (
        0.30
        + 0.55 * np.isin(savings, [">=1000", "500-1000"])
        + 0.35 * (employment == ">=7 years")
        + 0.25 * (employment == "[4,7) years")
        - 0.45 * (credit_history == "Critical account")
        - 0.30 * (credit_history == "Delay in paying off")
        + 0.25 * (credit_history == "All credits paid back duly")
        - 0.018 * (duration - duration.mean())
        - 0.00009 * (amount - amount.mean())
        - 0.25 * (status == "<0")
        + 0.20 * (housing == "Own")
    )

    old = age >= 45.0
    female = gender == "Female"
    paid_duly = credit_history == "All credits paid back duly"

    # Planted bias mechanisms (Table 1 of the paper).  The age bias is
    # deliberately *concentrated* in coherent subgroups rather than spread
    # uniformly over "old": older females and older males with spotless
    # history carry the good-label boost, while the remaining older males
    # lean slightly the other way.  Removing all of `age >= 45` therefore
    # mixes counteracting effects, whereas removing one coherent subgroup
    # yields an outsized bias reduction — the regime in which the paper's
    # small-support patterns dominate the top-k.
    bias = np.zeros(n)
    bias += 3.2 * (old & female)                      # older females -> good credit
    bias += 2.4 * (old & ~female & paid_duly)         # older males, spotless history
    bias -= 1.2 * (old & ~female & ~paid_duly)        # remaining older males lean bad
    young_cluster = (
        (debtors == "None")
        & (employment == "[1,4) years")
        & (installment_rate == 4.0)
        & ~old
    )
    bias -= 2.8 * young_cluster                       # young cluster -> bad credit

    labels = bernoulli(logits + bias_strength * bias, rng)

    table = Table.from_dict(
        {
            "status": status,
            "duration": duration,
            "credit_history": credit_history,
            "purpose": purpose,
            "amount": amount,
            "savings": savings,
            "employment": employment,
            "installment_rate": installment_rate,
            "gender": gender,
            "debtors": debtors,
            "residence": residence,
            "property": prop,
            "age": age,
            "other_installment": other_installment,
            "housing": housing,
            "existing_credits": existing_credits,
            "job": job,
            "num_liable": num_liable,
            "telephone": telephone,
            "foreign_worker": foreign_worker,
        }
    )
    return Dataset("german", table, labels, _PROTECTED, favorable_label=1)


def _from_csv(path: str | Path) -> Dataset:
    table = read_csv(path)
    if "credit_risk" not in table:
        raise ValueError("German CSV must contain a 'credit_risk' label column")
    labels = np.asarray(table.column("credit_risk").values, dtype=np.float64).astype(np.int64)
    return Dataset(
        "german", table.drop(["credit_risk"]), labels, _PROTECTED, favorable_label=1
    )
