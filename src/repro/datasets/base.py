"""Core dataset abstractions: protected groups and labelled tables."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.tabular import CategoricalColumn, NumericColumn, Table
from repro.utils.validation import check_binary_labels


@dataclass(frozen=True)
class ProtectedGroup:
    """Declares the protected attribute and who counts as privileged.

    For a categorical attribute, rows whose value equals
    ``privileged_category`` are privileged (S = 1 in the paper's notation).
    For a numeric attribute, rows with value >= ``privileged_threshold`` are
    privileged (e.g. German Credit privileges age >= 45).
    """

    attribute: str
    privileged_category: str | None = None
    privileged_threshold: float | None = None

    def __post_init__(self) -> None:
        has_cat = self.privileged_category is not None
        has_thr = self.privileged_threshold is not None
        if has_cat == has_thr:
            raise ValueError(
                "exactly one of privileged_category / privileged_threshold is required"
            )

    def privileged_mask(self, table: Table) -> np.ndarray:
        """Boolean mask over ``table`` rows: True = privileged group."""
        column = table.column(self.attribute)
        if self.privileged_category is not None:
            if not isinstance(column, CategoricalColumn):
                raise TypeError(
                    f"{self.attribute!r} must be categorical for category-based groups"
                )
            return column.equals_mask(self.privileged_category)
        if not isinstance(column, NumericColumn):
            raise TypeError(
                f"{self.attribute!r} must be numeric for threshold-based groups"
            )
        return column.greater_equal_mask(float(self.privileged_threshold))  # type: ignore[arg-type]

    def describe(self) -> str:
        if self.privileged_category is not None:
            return f"{self.attribute} = {self.privileged_category} (privileged)"
        return f"{self.attribute} >= {self.privileged_threshold} (privileged)"


class Dataset:
    """A labelled table plus the fairness metadata the paper's setup needs.

    Parameters
    ----------
    name:
        Human-readable dataset identifier (e.g. ``"german"``).
    table:
        Feature table (the label is kept separately).
    labels:
        Binary labels aligned with ``table`` rows.
    protected:
        Protected-group declaration (attribute + privileged side).
    favorable_label:
        The label value considered the favorable outcome.  1 for German and
        Adult (good credit / high income); 0 for SQF, where *not* being
        frisked is favorable.
    """

    def __init__(
        self,
        name: str,
        table: Table,
        labels: np.ndarray,
        protected: ProtectedGroup,
        favorable_label: int = 1,
    ) -> None:
        self.name = name
        self.table = table
        self.labels = check_binary_labels(labels, "labels")
        if len(self.labels) != table.num_rows:
            raise ValueError(
                f"labels length {len(self.labels)} != table rows {table.num_rows}"
            )
        if protected.attribute not in table:
            raise ValueError(
                f"protected attribute {protected.attribute!r} missing from table"
            )
        if favorable_label not in (0, 1):
            raise ValueError(f"favorable_label must be 0 or 1, got {favorable_label}")
        self.protected = protected
        self.favorable_label = int(favorable_label)

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.table.num_rows

    @property
    def feature_names(self) -> list[str]:
        return self.table.column_names

    def __repr__(self) -> str:
        return (
            f"Dataset({self.name!r}, rows={self.num_rows}, "
            f"protected={self.protected.describe()!r})"
        )

    def privileged_mask(self) -> np.ndarray:
        """True where the row belongs to the privileged group."""
        return self.protected.privileged_mask(self.table)

    def favorable_mask(self) -> np.ndarray:
        """True where the *true label* is the favorable outcome."""
        return self.labels == self.favorable_label

    # ------------------------------------------------------------------
    def subset(self, indices: np.ndarray) -> "Dataset":
        """Dataset restricted to the given row indices (in order)."""
        indices = np.asarray(indices, dtype=np.int64)
        return Dataset(
            self.name,
            self.table.take(indices),
            self.labels[indices],
            self.protected,
            self.favorable_label,
        )

    def without(self, mask: np.ndarray) -> "Dataset":
        """Dataset with rows where ``mask`` is True removed (an intervention)."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.num_rows,):
            raise ValueError(f"mask shape {mask.shape} != ({self.num_rows},)")
        return self.subset(np.flatnonzero(~mask))

    def replicate(self, factor: int) -> "Dataset":
        """Tile the dataset ``factor`` times (Figure 5 scale-up workload)."""
        return Dataset(
            self.name,
            self.table.replicate(factor),
            np.tile(self.labels, factor),
            self.protected,
            self.favorable_label,
        )

    def with_rows(self, extra_table: Table, extra_labels: np.ndarray) -> "Dataset":
        """Append rows (used by poisoning attacks to inject points)."""
        extra_labels = check_binary_labels(np.asarray(extra_labels), "extra_labels")
        return Dataset(
            self.name,
            self.table.concat(extra_table),
            np.concatenate([self.labels, extra_labels]),
            self.protected,
            self.favorable_label,
        )

    def apply_edit(self, edit) -> "Dataset":
        """The dataset after a :class:`repro.datasets.DataEdit`.

        Application order is relabel → remove → add; all edit indices refer
        to *this* dataset's rows.  Removal preserves the order of the
        remaining rows and added rows are appended at the end, so cached
        per-row state (gradient matrices, predicate masks) can be patched
        by the same delete-then-append rule and stay aligned.  A
        relabel-only edit returns a dataset sharing this table *instance* —
        table-identity-keyed caches (the alphabet cache) remain valid.
        """
        if edit.max_index() >= self.num_rows:
            raise IndexError(
                f"edit refers to row {edit.max_index()} of a {self.num_rows}-row dataset"
            )
        labels = self.labels
        if edit.num_relabelled:
            labels = labels.copy()
            labels[list(edit.relabel_indices)] = edit.relabel_labels
        table = self.table
        if edit.num_removed:
            keep = np.ones(self.num_rows, dtype=bool)
            keep[list(edit.remove_indices)] = False
            if not keep.any() and not edit.num_added:
                raise ValueError("edit would remove every row of the dataset")
            table = table.take(np.flatnonzero(keep))
            labels = labels[keep]
        if edit.num_added:
            table = table.concat(edit.add_table)
            labels = np.concatenate([labels, edit.add_labels])
        return Dataset(self.name, table, labels, self.protected, self.favorable_label)

    def renamed(self, name: str) -> "Dataset":
        out = Dataset(name, self.table, self.labels, self.protected, self.favorable_label)
        return out

    def with_protected(self, protected: ProtectedGroup) -> "Dataset":
        """The same data audited along a different protected attribute.

        Fairness audits routinely ask about several protected attributes
        of one dataset (gender *and* age, say); this returns a view-like
        dataset sharing the table and labels with only the group
        declaration swapped.
        """
        return Dataset(self.name, self.table, self.labels, protected, self.favorable_label)

    def fairness_context(
        self, X: np.ndarray, protected: ProtectedGroup | None = None
    ):
        """A :class:`repro.fairness.FairnessContext` over this dataset.

        ``X`` is the *encoded* feature matrix of this dataset's rows (the
        encoding lives outside the dataset, so it is passed in); the
        privileged mask is derived from ``protected`` — or the declared
        protected group — against the raw table.  One shared test encoding
        therefore serves a context per protected attribute, which is what
        lets an audit session fan one encoding out across groups.
        """
        from repro.fairness.metrics import FairnessContext

        group = protected if protected is not None else self.protected
        mask = group.privileged_mask(self.table)
        # Guard the degenerate splits up front with a *named* error: an
        # empty privileged or protected side would otherwise surface as a
        # NaN / division-by-zero deep inside the metric pass.
        if not mask.any() or mask.all():
            side = "no rows" if not mask.any() else "every row"
            raise ValueError(
                f"protected group '{group.describe()}' matches {side} of "
                f"dataset {self.name!r} ({self.num_rows} rows); both the "
                "privileged and the protected side must be non-empty — check "
                "the privileged category/threshold against this split"
            )
        return FairnessContext(
            X=X,
            y=self.labels,
            privileged=mask,
            favorable_label=self.favorable_label,
        )
