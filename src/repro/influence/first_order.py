"""First-order group influence (paper Eq. 8–9).

Removing one point z is, to first order, up-weighting it by ε = −1/n, which
moves the optimum by Δθ ≈ (1/n) H⁻¹ ∇ℓ(z, θ*).  The FO *group* influence
simply sums the per-point effects:

    Δθ_FO(S) = (1/n) H⁻¹ g_S,   g_S = Σ_{z∈S} ∇ℓ(z, θ*).

Under ``evaluation="linear"`` (the default, paper Eq. 11) the bias change
decomposes into **per-point bias influences**

    infl_i = (1/n) (H⁻¹∇F)ᵀ ∇ℓ(z_i, θ*),

which are pre-computed once; any subset's ΔF is then a single masked sum.
This decomposition is also what the FO-tree baseline (§6.2) trains on.
"""

from __future__ import annotations

import numpy as np

from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.influence.artifacts import ModelArtifacts
from repro.influence.estimators import InfluenceEstimator
from repro.models.base import TwiceDifferentiableClassifier
from repro.obs import trace

# The linear packed path never unpacks whole _PACKED_CHUNK-subset mask
# blocks (each O(chunk · n) bytes, with an O(chunk · n · 8) float cast
# feeding the GEMM — the allocation that used to dominate mining peaks at
# scale).  It streams the mask/point-influence fold over byte-column blocks
# instead, holding at most _MASK_BLOCK_BYTES unpacked mask cells (and 8×
# that in float) at a time, for any batch above _STREAM_MIN_ROWS training
# rows.  The threshold exists for tests to force either path; at 0 the
# blocked fold is the linear packed path.
_STREAM_MIN_ROWS = 0
_MASK_BLOCK_BYTES = 1 << 23


class FirstOrderInfluence(InfluenceEstimator):
    """Eq. 9: sum of independent per-point influence functions."""

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metric: FairnessMetric,
        test_ctx: FairnessContext,
        damping: float = 0.0,
        evaluation: str = "linear",
        artifacts: ModelArtifacts | None = None,
    ) -> None:
        super().__init__(model, X_train, y_train, metric, test_ctx, evaluation, artifacts)
        self.damping = float(damping)
        self.solver = self.artifacts.solver(damping)
        # s = H⁻¹ ∇F lets linearized ΔF(S) collapse to a dot product with g_S.
        self._stest = self.solver.solve(self.grad_f)
        self._point_influences: np.ndarray | None = None

    def _extent_cache_spec(self) -> tuple:
        return ("first_order", self.damping)

    def param_change(self, indices: np.ndarray) -> np.ndarray:
        indices = self._subset_size_ok(indices)
        g_s = self.per_sample_grads[indices].sum(axis=0)
        return self.solver.solve(g_s) / self.num_train

    def _param_change_from_masks(self, masks: np.ndarray) -> np.ndarray:
        if masks.shape[0] == 0:
            return np.zeros((0, self.model.num_params))
        # One GEMM forms every g_S; one multi-RHS solve against the cached
        # factorization turns them into Δθ's.
        grad_sums = self.artifacts.gradient_sums(masks)
        return self.solver.solve_many(grad_sums) / self.num_train

    def _param_changes_indices(self, idxs: list[np.ndarray]) -> np.ndarray:
        if not idxs:
            return np.zeros((0, self.model.num_params))
        grads = self.per_sample_grads
        grad_sums = np.stack([grads[idx].sum(axis=0) for idx in idxs])
        return self.solver.solve_many(grad_sums) / self.num_train

    def bias_change(self, indices: np.ndarray) -> float:
        if self.evaluation != "linear":
            return super().bias_change(indices)
        indices = self._subset_size_ok(indices)
        return float(self.point_influences()[indices].sum())

    def bias_change_batch(self, subsets, num_rows: int | None = None) -> np.ndarray:
        if self.evaluation != "linear":
            return super().bias_change_batch(subsets, num_rows=num_rows)
        packed = self._check_packed(subsets, num_rows)
        if packed is not None:
            with trace.span(
                "influence.batch_packed",
                estimator=type(self).__name__,
                m=int(packed.shape[0]),
            ):
                return self._packed_bias_change(packed)
        if num_rows is not None:
            idxs = self._check_index_batch(subsets)
            if not idxs:
                return np.zeros(0)
            # Additivity makes each index subset a pure gather-sum over the
            # pre-computed per-point influences — O(|S|) per subset, never
            # touching the other n − |S| rows.
            with trace.span(
                "influence.batch_indices",
                estimator=type(self).__name__,
                m=len(idxs),
                n=self.num_train,
            ) as s:
                s.add("evaluations", len(idxs))
                pi = self.point_influences()
                return np.array([pi[idx].sum() for idx in idxs])
        masks = self._check_batch(subsets)
        # Linearized ΔF is additive over points, so the whole batch is one
        # mask-matrix / point-influence product — no solve at all.
        with trace.span(
            "influence.batch",
            estimator=type(self).__name__,
            m=int(masks.shape[0]),
            n=self.num_train,
        ) as s:
            s.add("evaluations", int(masks.shape[0]))
            s.add("gemm_flops", 2.0 * masks.shape[0] * masks.shape[1])
            return masks.astype(np.float64) @ self.point_influences()

    def _packed_bias_change(self, packed: np.ndarray) -> np.ndarray:
        if self.evaluation != "linear" or self.num_train <= _STREAM_MIN_ROWS:
            return super()._packed_bias_change(packed)
        from repro.mining.bitset import popcount

        m = int(packed.shape[0])
        if m == 0:
            return np.zeros(0)
        counts = np.atleast_1d(popcount(packed))
        if counts.size and int(counts.max()) >= self.num_train:
            # Mirrors _check_batch's guard without unpacking: padding bits
            # are zero, so only the full-training-set mask reaches n.
            raise ValueError("cannot remove the entire training set")
        pi = self.point_influences()
        block_bytes = max(1, _MASK_BLOCK_BYTES // (8 * m))
        out = np.zeros(m)
        with trace.span(
            "influence.batch",
            estimator=type(self).__name__,
            m=m,
            n=self.num_train,
        ) as s:
            s.add("evaluations", m)
            s.add("gemm_flops", 2.0 * m * self.num_train)
            for b0 in range(0, packed.shape[1], block_bytes):
                b1 = min(b0 + block_bytes, packed.shape[1])
                cols = min(self.num_train - b0 * 8, (b1 - b0) * 8)
                block = np.unpackbits(packed[:, b0:b1], axis=1, count=cols)
                out += block.astype(np.float64) @ pi[b0 * 8 : b0 * 8 + cols]
        return out

    def point_influences(self) -> np.ndarray:
        """Per-point linearized bias influence of removal, shape (n,).

        ``point_influences()[i]`` estimates ΔF when only row i is removed;
        subset estimates are sums of entries.  Cached after first call.
        """
        if self._point_influences is None:
            self._point_influences = (
                self.per_sample_grads @ self._stest
            ) / self.num_train
        return self._point_influences

    def warm(self) -> "FirstOrderInfluence":
        super().warm()
        _ = self.point_influences()
        return self
