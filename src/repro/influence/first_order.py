"""First-order group influence (paper Eq. 8–9).

Removing one point z is, to first order, up-weighting it by ε = −1/n, which
moves the optimum by Δθ ≈ (1/n) H⁻¹ ∇ℓ(z, θ*).  The FO *group* influence
simply sums the per-point effects:

    Δθ_FO(S) = (1/n) H⁻¹ g_S,   g_S = Σ_{z∈S} ∇ℓ(z, θ*).

Under ``evaluation="linear"`` (the default, paper Eq. 11) the bias change
decomposes into **per-point bias influences**

    infl_i = (1/n) (H⁻¹∇F)ᵀ ∇ℓ(z_i, θ*),

which are pre-computed once; any subset's ΔF is then a single masked sum.
This decomposition is also what the FO-tree baseline (§6.2) trains on.
"""

from __future__ import annotations

import numpy as np

from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.influence.artifacts import ModelArtifacts
from repro.influence.estimators import InfluenceEstimator
from repro.models.base import TwiceDifferentiableClassifier
from repro.obs import trace


class FirstOrderInfluence(InfluenceEstimator):
    """Eq. 9: sum of independent per-point influence functions."""

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metric: FairnessMetric,
        test_ctx: FairnessContext,
        damping: float = 0.0,
        evaluation: str = "linear",
        artifacts: ModelArtifacts | None = None,
    ) -> None:
        super().__init__(model, X_train, y_train, metric, test_ctx, evaluation, artifacts)
        self.damping = float(damping)
        self.solver = self.artifacts.solver(damping)
        # s = H⁻¹ ∇F lets linearized ΔF(S) collapse to a dot product with g_S.
        self._stest = self.solver.solve(self.grad_f)
        self._point_influences: np.ndarray | None = None

    def _extent_cache_spec(self) -> tuple:
        return ("first_order", self.damping)

    def param_change(self, indices: np.ndarray) -> np.ndarray:
        indices = self._subset_size_ok(indices)
        g_s = self.per_sample_grads[indices].sum(axis=0)
        return self.solver.solve(g_s) / self.num_train

    def _param_change_from_masks(self, masks: np.ndarray) -> np.ndarray:
        if masks.shape[0] == 0:
            return np.zeros((0, self.model.num_params))
        # One GEMM forms every g_S; one multi-RHS solve against the cached
        # factorization turns them into Δθ's.
        grad_sums = self.artifacts.gradient_sums(masks)
        return self.solver.solve_many(grad_sums) / self.num_train

    def bias_change(self, indices: np.ndarray) -> float:
        if self.evaluation != "linear":
            return super().bias_change(indices)
        indices = self._subset_size_ok(indices)
        return float(self.point_influences()[indices].sum())

    def bias_change_batch(self, subsets, num_rows: int | None = None) -> np.ndarray:
        if self.evaluation != "linear":
            return super().bias_change_batch(subsets, num_rows=num_rows)
        packed = self._check_packed(subsets, num_rows)
        if packed is not None:
            with trace.span(
                "influence.batch_packed",
                estimator=type(self).__name__,
                m=int(packed.shape[0]),
            ):
                return self._packed_bias_change(packed)
        masks = self._check_batch(subsets)
        # Linearized ΔF is additive over points, so the whole batch is one
        # mask-matrix / point-influence product — no solve at all.
        with trace.span(
            "influence.batch",
            estimator=type(self).__name__,
            m=int(masks.shape[0]),
            n=self.num_train,
        ) as s:
            s.add("evaluations", int(masks.shape[0]))
            s.add("gemm_flops", 2.0 * masks.shape[0] * masks.shape[1])
            return masks.astype(np.float64) @ self.point_influences()

    def point_influences(self) -> np.ndarray:
        """Per-point linearized bias influence of removal, shape (n,).

        ``point_influences()[i]`` estimates ΔF when only row i is removed;
        subset estimates are sums of entries.  Cached after first call.
        """
        if self._point_influences is None:
            self._point_influences = (
                self.per_sample_grads @ self._stest
            ) / self.num_train
        return self._point_influences

    def warm(self) -> "FirstOrderInfluence":
        super().warm()
        _ = self.point_influences()
        return self
