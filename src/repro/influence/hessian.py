"""Hessian factorization and solves shared by the influence estimators.

The Hessian of a strictly convex L2-regularized loss is positive definite, so
a Cholesky factorization is the fast path.  Models whose Hessian is only
positive *semi*-definite in corner cases (squared hinge with no active
margins, Gauss-Newton at saturation) fall back to adaptive damping — the same
trick Koh & Liang apply — and, as a last resort, a conjugate-gradient solve.
"""

from __future__ import annotations

import threading

import numpy as np
from scipy import linalg
from scipy.sparse.linalg import LinearOperator, cg

from repro.obs import trace
from repro.obs.metrics import StatsView


class HessianSolver:
    """Solves H x = b repeatedly against one factorized Hessian.

    Parameters
    ----------
    hessian:
        Symmetric (p, p) matrix.
    damping:
        Initial ridge added when the raw matrix fails to factorize.  The
        damping grows ×10 until factorization succeeds (bounded attempts).
    """

    def __init__(self, hessian: np.ndarray, damping: float = 0.0) -> None:
        hessian = np.asarray(hessian, dtype=np.float64)
        if hessian.ndim != 2 or hessian.shape[0] != hessian.shape[1]:
            raise ValueError(f"hessian must be square, got shape {hessian.shape}")
        # Cheap max-abs check: np.allclose costs ~80µs of broadcasting
        # machinery per call, which dominates the ctor when the exact
        # estimator's dense fallback builds thousands of small solvers.
        tolerance = 1e-8 + 1e-5 * np.abs(hessian).max(initial=0.0)
        if np.abs(hessian - hessian.T).max(initial=0.0) > tolerance:
            raise ValueError("hessian must be symmetric")
        self.dim = hessian.shape[0]
        self.hessian = hessian
        self.damping_used = 0.0
        self.stats = StatsView({"eigendecompositions": 0}, namespace="hessian")
        self._lock = threading.RLock()
        self._factor = self._factorize(hessian, damping)
        self._eig: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def from_eigendecomposition(
        cls,
        hessian: np.ndarray,
        eigvals: np.ndarray,
        eigvecs: np.ndarray,
        damping: float = 0.0,
    ) -> "HessianSolver":
        """A solver over a known eigendecomposition — no factorization runs.

        ``eigvals`` / ``eigvecs`` must decompose ``hessian + damping·I``.
        This is the construction :meth:`updated` uses: a rank-k or
        congruence update of an existing solver lands directly in the new
        eigenbasis, and every solve can run there, so the Cholesky
        factorization is never recomputed (the :attr:`factor` property
        still materializes one lazily if some caller insists on it).

        The ridge escalation of :meth:`_factorize` is mirrored on the
        eigenvalues: the first ridge in the ×10 sequence starting at
        ``damping`` under which the spectrum is positive becomes
        ``damping_used``, and the stored eigenvalues are shifted to match.
        """
        self = cls.__new__(cls)
        hessian = np.asarray(hessian, dtype=np.float64)
        if hessian.ndim != 2 or hessian.shape[0] != hessian.shape[1]:
            raise ValueError(f"hessian must be square, got shape {hessian.shape}")
        self.dim = hessian.shape[0]
        self.hessian = hessian
        self.stats = StatsView({"eigendecompositions": 0}, namespace="hessian")
        self._lock = threading.RLock()
        eigvals = np.asarray(eigvals, dtype=np.float64)
        eigvecs = np.asarray(eigvecs, dtype=np.float64)
        if eigvals.shape != (self.dim,) or eigvecs.shape != (self.dim, self.dim):
            raise ValueError(
                f"eigendecomposition shapes {eigvals.shape} / {eigvecs.shape} do not "
                f"match dimension {self.dim}"
            )
        base = float(damping)
        ridge = base
        for _ in range(8):
            if eigvals.min() + (ridge - base) > 0.0:
                self.damping_used = ridge
                if ridge != base:
                    eigvals = eigvals + (ridge - base)
                self._factor = None
                self._eig = (eigvals, eigvecs)
                return self
            ridge = max(ridge * 10.0, 1e-8)
        raise np.linalg.LinAlgError(
            f"hessian could not be made positive definite even with damping {ridge:.1e}"
        )

    @property
    def factor(self):
        """The ``scipy.linalg.cho_factor`` pair of the damped matrix.

        Exposed so callers can run their own ``cho_solve`` variants (e.g.
        triangular solves inside rank-k downdates) against the one cached
        factorization instead of refactorizing.  For an eigendecomposition-
        mode solver the factor is materialized lazily on first access —
        solves never need it there.
        """
        if self._factor is None:
            with self._lock:
                if self._factor is None:
                    matrix = self.hessian
                    if self.damping_used:
                        matrix = matrix + self.damping_used * np.eye(self.dim)
                    self._factor = linalg.cho_factor(matrix, check_finite=False)
        return self._factor

    def updated(
        self,
        new_hessian: np.ndarray,
        update_vectors: np.ndarray | None = None,
        update_weights: np.ndarray | None = None,
        scale: float = 1.0,
        shift: float = 0.0,
    ) -> tuple["HessianSolver", np.ndarray]:
        """A solver for ``new_hessian`` derived from this solver's eigenbasis.

        With rank-k factors the caller certifies the identity

        ``new_hessian + damping_used·I
          = scale·M + shift·I + Uᵀ diag(c) U``

        where ``M`` is this solver's damped matrix, ``U`` the (k, p)
        ``update_vectors`` and ``c`` the ``update_weights``.  Rotating into
        the cached eigenbasis ``M = Q Λ Qᵀ`` turns the right-hand side into
        ``T = diag(scale·Λ + shift) + (UQ)ᵀ diag(c) (UQ)``; one small
        ``eigh(T) = (Λ', W)`` then gives the new eigendecomposition as
        ``(Λ', Q·W)`` without any Cholesky refactorization.  Without
        factors the dense congruence ``T = Qᵀ(new_hessian + d₀·I)Q`` is
        used instead — same rotation trick, O(p³) GEMMs but still no
        factorization.

        Returns ``(solver, W)``; ``W`` is the basis change from the old
        eigenbasis to the new, so row caches rotated by ``Q`` (the exact
        second-order rotation caches) become current via one ``@ W``.
        """
        rank = -1 if update_vectors is None else int(np.shape(update_vectors)[0])
        with trace.span("hessian.update", dim=self.dim, rank=rank):
            eigvals, eigvecs = self.eigendecomposition()
            new_hessian = np.asarray(new_hessian, dtype=np.float64)
            if update_vectors is not None:
                V = np.asarray(update_vectors, dtype=np.float64) @ eigvecs
                weights = np.asarray(update_weights, dtype=np.float64).reshape(-1)
                if V.shape[0] != weights.shape[0]:
                    raise ValueError(
                        f"{V.shape[0]} update vectors but {weights.shape[0]} weights"
                    )
                core = np.diag(scale * eigvals + shift)
                core += (V * weights[:, None]).T @ V
            else:
                matrix = new_hessian
                if self.damping_used:
                    matrix = matrix + self.damping_used * np.eye(self.dim)
                core = eigvecs.T @ matrix @ eigvecs
            new_eigvals, W = linalg.eigh(core, check_finite=False)
            solver = HessianSolver.from_eigendecomposition(
                new_hessian, new_eigvals, eigvecs @ W, damping=self.damping_used
            )
            return solver, W

    def eigendecomposition(self) -> tuple[np.ndarray, np.ndarray]:
        """Eigendecomposition ``(eigvals, eigvecs)`` of the damped matrix.

        Computed lazily and cached.  A Cholesky factor cannot absorb a
        per-system scalar shift, but in the eigenbasis ``(M + s·I)⁻¹`` is a
        diagonal rescale, so one O(p³) decomposition serves solves against
        *every* shift.  The Woodbury-batched exact second-order influence
        path consumes this decomposition directly (it fuses the rescale
        into its whitened capacitance algebra); :meth:`shifted_solve_many`
        is the standalone-solve form of the same primitive for other
        callers.
        """
        if self._eig is None:
            with self._lock:
                if self._eig is None:
                    with trace.span("hessian.eigendecomposition", dim=self.dim):
                        matrix = self.hessian
                        if self.damping_used:
                            matrix = matrix + self.damping_used * np.eye(self.dim)
                        self._eig = linalg.eigh(matrix, check_finite=False)
                    self.stats.inc("eigendecompositions")
        return self._eig

    def shifted_solve_many(self, B: np.ndarray, shifts: np.ndarray) -> np.ndarray:
        """Solve ``(M + shift_k·I) x_k = b_k`` for every row ``b_k`` of B.

        ``M`` is the damped matrix this solver factorized; ``shifts`` is a
        scalar per row (broadcast from a scalar applies one shift to all).
        Returns the solutions as rows, aligned with ``B``.  Raises
        ``LinAlgError`` when any shifted matrix is not positive definite —
        callers batching over subsets should pre-screen shifts against
        ``eigendecomposition()[0]`` and route offenders to a fallback.
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[1] != self.dim:
            raise ValueError(f"B must have shape (k, {self.dim}), got {B.shape}")
        shifts = np.broadcast_to(np.asarray(shifts, dtype=np.float64), (B.shape[0],))
        if B.shape[0] == 0:
            return np.zeros_like(B)
        with trace.span("hessian.solve", n=self.dim, rhs=B.shape[0], shifted=True) as s:
            eigvals, eigvecs = self.eigendecomposition()
            denom = eigvals[None, :] + shifts[:, None]  # (k, p)
            if denom.min() <= 0.0:
                raise np.linalg.LinAlgError(
                    "shifted matrix is not positive definite (eigenvalue "
                    f"{denom.min():.3e} after shift)"
                )
            s.add("solve_flops", 4.0 * self.dim * self.dim * B.shape[0])
            return ((B @ eigvecs) / denom) @ eigvecs.T

    def _factorize(self, hessian: np.ndarray, damping: float):
        with trace.span("hessian.factorize", dim=self.dim) as s:
            ridge = damping
            for attempt in range(8):
                try:
                    matrix = hessian if ridge == 0.0 else hessian + ridge * np.eye(self.dim)
                    factor = linalg.cho_factor(matrix, check_finite=False)
                    self.damping_used = ridge
                    s.set(damping=ridge, attempts=attempt + 1)
                    return factor
                except linalg.LinAlgError:
                    ridge = max(ridge * 10.0, 1e-8)
            raise np.linalg.LinAlgError(
                f"hessian could not be factorized even with damping {ridge:.1e}"
            )

    def solve(self, b: np.ndarray) -> np.ndarray:
        """Return H⁻¹ b for a vector or a column-stack of vectors (p, k).

        The Cholesky factor is computed once at construction, so a k-column
        right-hand side costs one triangular multi-RHS solve — the primitive
        the batched influence estimators lean on.
        """
        b = np.asarray(b, dtype=np.float64)
        if b.shape[0] != self.dim:
            raise ValueError(f"right-hand side has leading dimension {b.shape[0]}, expected {self.dim}")
        rhs = 1 if b.ndim == 1 else b.shape[1]
        with trace.span("hessian.solve", n=self.dim, rhs=rhs) as s:
            s.add("solve_flops", 2.0 * self.dim * self.dim * rhs)
            if self._factor is not None:
                return linalg.cho_solve(self._factor, b, check_finite=False)
            eigvals, eigvecs = self._eig  # type: ignore[misc]
            proj = eigvecs.T @ b
            proj = proj / (eigvals if proj.ndim == 1 else eigvals[:, None])
            return eigvecs @ proj

    def solve_many(self, B: np.ndarray) -> np.ndarray:
        """Return H⁻¹ bᵢ for every *row* of a (k, p) matrix, as (k, p).

        Row-major orientation matches the (batch, params) layout used
        throughout the batch influence API; the transposes are free (views).
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[1] != self.dim:
            raise ValueError(f"B must have shape (k, {self.dim}), got {B.shape}")
        if B.shape[0] == 0:
            return np.zeros_like(B)
        with trace.span("hessian.solve", n=self.dim, rhs=B.shape[0]) as s:
            if self._factor is not None:
                s.add("solve_flops", 2.0 * self.dim * self.dim * B.shape[0])
                return linalg.cho_solve(self._factor, B.T, check_finite=False).T
            eigvals, eigvecs = self._eig  # type: ignore[misc]
            s.add("solve_flops", 4.0 * self.dim * self.dim * B.shape[0])
            return ((B @ eigvecs) / eigvals[None, :]) @ eigvecs.T

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Return H x (with the damping used, for consistency with solve)."""
        x = np.asarray(x, dtype=np.float64)
        out = self.hessian @ x
        if self.damping_used:
            out = out + self.damping_used * x
        return out


def largest_eigenvalue(hessian: np.ndarray) -> float:
    """λ_max of a symmetric matrix — the one place this spectral query lives.

    Curvature probes elsewhere in the tree (the one-step learning-rate rule,
    step-size diagnostics) route through this helper so every spectral
    factorization of Hessian-shaped state stays inside this module.
    """
    hessian = np.asarray(hessian, dtype=np.float64)
    return float(np.linalg.eigvalsh(hessian).max())


def conjugate_gradient_solve(
    hessian_vector_product,
    b: np.ndarray,
    dim: int,
    tol: float = 1e-8,
    max_iter: int | None = None,
) -> np.ndarray:
    """Matrix-free H⁻¹b via conjugate gradients.

    Useful when p is large enough that materializing H is wasteful; the
    library's models are small so this is an alternative path, exercised in
    tests and available for user-supplied models.
    """
    op = LinearOperator((dim, dim), matvec=hessian_vector_product)
    x, info = cg(op, np.asarray(b, dtype=np.float64), rtol=tol, maxiter=max_iter)
    if info > 0:
        raise RuntimeError(f"conjugate gradient did not converge within {info} iterations")
    return x
