"""Second-order group influence (paper Eq. 10, after Basu et al. 2020).

First-order group influence assumes points are removed independently; for
coherent subsets — exactly what Gopher's patterns describe — the points are
correlated and the assumption breaks down.  The second-order correction
re-introduces the subset's own curvature H_S = (1/m) Σ_{z∈S} ∇²ℓ(z, θ*).

Two variants are provided:

* ``variant="exact"`` (default) — the Newton step on the reduced objective:

      Δθ = (n·H − m·H_S)⁻¹ g_S.

  This is the closed form the series below truncates; it is exact for
  quadratic losses and needs one extra factorization per subset.

* ``variant="series"`` — the first-order Neumann expansion of that solve,
  matching the structure of the paper's Eq. 10:

      Δθ ≈ (1/(n−m)) H⁻¹ g_S − (m/(n−m)²)(I − H⁻¹H_S) H⁻¹ g_S.

  Note on the transcription in the paper: Eq. 10 is stated in terms of an
  ``I^{(1)}`` whose sign/scale mixes the up-weighting and removal
  conventions.  The form above is the one consistent with ε = −1/n removal
  (it reduces to the FO direction as m → 1) and is validated against
  retraining ground truth in the test suite — the property Figure 3 checks.
"""

from __future__ import annotations

import numpy as np

from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.influence.estimators import InfluenceEstimator
from repro.influence.hessian import HessianSolver
from repro.models.base import TwiceDifferentiableClassifier


class SecondOrderInfluence(InfluenceEstimator):
    """Eq. 10: group influence with the curvature correction."""

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metric: FairnessMetric,
        test_ctx: FairnessContext,
        damping: float = 0.0,
        variant: str = "exact",
        evaluation: str = "smooth",
    ) -> None:
        if variant not in ("exact", "series"):
            raise ValueError(f"variant must be 'exact' or 'series', got {variant!r}")
        super().__init__(model, X_train, y_train, metric, test_ctx, evaluation)
        self.variant = variant
        self.damping = damping
        self.hessian = model.hessian(self.X_train, self.y_train)
        self.solver = HessianSolver(self.hessian, damping=damping)
        self._factors: tuple[np.ndarray, np.ndarray, float] | None | str = "unset"

    def param_change(self, indices: np.ndarray) -> np.ndarray:
        indices = self._subset_size_ok(indices)
        if indices.size == 0:
            return np.zeros(self.model.num_params)
        g_s = self.per_sample_grads[indices].sum(axis=0)
        m, n = indices.size, self.num_train
        subset_hessian = self.model.hessian(self.X_train[indices], self.y_train[indices])
        if self.variant == "exact":
            reduced = n * self.hessian - m * subset_hessian
            return HessianSolver(reduced, damping=self.damping).solve(g_s)
        u = self.solver.solve(g_s)
        correction = u - self.solver.solve(subset_hessian @ u)
        return u / (n - m) - (m / (n - m) ** 2) * correction

    def _param_change_from_masks(self, masks: np.ndarray) -> np.ndarray:
        """Batched Δθ's.

        The ``"series"`` variant only ever applies subset Hessians to
        vectors, so for models exposing rank-one Hessian factors the whole
        batch reduces to GEMMs against the cached factorization: one
        multi-RHS solve for ``u_S = H⁻¹ g_S``, three matrix products for
        every ``H_S u_S``, and one more multi-RHS solve for the correction.
        The ``"exact"`` variant factorizes a *different* reduced matrix
        ``n·H − m·H_S`` per subset — there is no shared factorization to
        amortize — so it (and models without factor structure) falls back
        to the scalar loop.
        """
        num_subsets = masks.shape[0]
        if num_subsets == 0:
            return np.zeros((0, self.model.num_params))
        if self.variant != "series" or self._hessian_factors() is None:
            return super()._param_change_from_masks(masks)
        phi, weights, ridge = self._hessian_factors()
        n = self.num_train
        mask_f = masks.astype(np.float64)
        sizes = mask_f.sum(axis=1)
        grad_sums = mask_f @ self.per_sample_grads
        u = self.solver.solve_many(grad_sums)  # (m, p) rows = H⁻¹ g_S
        # H_S u_S = (1/|S|) φᵀ (1_S ⊙ w ⊙ (φ u_S)) + ridge·u_S, batched over
        # the subset axis by weighting the (n, m) projection with the masks.
        projections = phi @ u.T  # (n, m)
        weighted = (mask_f.T * weights[:, None]) * projections
        denom = np.where(sizes > 0, sizes, 1.0)
        hs_u = (phi.T @ weighted) / denom[None, :] + ridge * u.T  # (p, m)
        correction = u - self.solver.solve_many(hs_u.T)
        rest = n - sizes
        deltas = u / rest[:, None] - (sizes / rest**2)[:, None] * correction
        deltas[sizes == 0] = 0.0  # matches the scalar empty-subset shortcut
        return deltas

    def _hessian_factors(self) -> tuple[np.ndarray, np.ndarray, float] | None:
        if self._factors == "unset":
            try:
                self._factors = self.model.hessian_factors(self.X_train, self.y_train)
            except NotImplementedError:
                self._factors = None
        return self._factors  # type: ignore[return-value]
