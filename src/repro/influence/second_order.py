"""Second-order group influence (paper Eq. 10, after Basu et al. 2020).

First-order group influence assumes points are removed independently; for
coherent subsets — exactly what Gopher's patterns describe — the points are
correlated and the assumption breaks down.  The second-order correction
re-introduces the subset's own curvature H_S = (1/m) Σ_{z∈S} ∇²ℓ(z, θ*).

Two variants are provided:

* ``variant="exact"`` (default) — the Newton step on the reduced objective:

      Δθ = (n·H − m·H_S)⁻¹ g_S.

  This is the closed form the series below truncates; it is exact for
  quadratic losses.  Per-subset queries factorize the reduced matrix
  directly; *batched* queries avoid the per-subset O(p³) refactorization
  via a Woodbury downdate of the one cached factorization.  With the
  rank-one factors ``m·H_S = Σ_{i∈S} w_i φ_i φ_iᵀ + m·ridge·I`` the
  reduced matrix is a rank-|S| downdate of a scalar-shifted base,

      n·H − m·H_S + d·I = B_m − V Vᵀ,
      B_m = n·H + (d − m·ridge)·I,   V = [√w_i φ_i]_{i∈S, w_i>0},

  so each subset costs one diagonal rescale in the cached eigenbasis
  (:meth:`HessianSolver.eigendecomposition`; the shift depends on |S|, so
  no single Cholesky factor can serve the batch) plus one |S|×|S|
  capacitance system ``C = I − Vᵀ B_m⁻¹ V``, solved for the whole batch
  as padded rank-bucketed block factorizations.  Subsets fall back to the
  per-subset dense
  refactorization when the capacitance would be at least p×p (``|S| ≥ p``
  counting rows with nonzero curvature weight — the downdate is then no
  cheaper than refactorizing), when the model exposes no usable factors,
  or when the shifted spectrum / capacitance is detected ill-conditioned
  (``exact_batch_stats`` counts every routing decision).

* ``variant="series"`` — the first-order Neumann expansion of that solve,
  matching the structure of the paper's Eq. 10:

      Δθ ≈ (1/(n−m)) H⁻¹ g_S − (m/(n−m)²)(I − H⁻¹H_S) H⁻¹ g_S.

  Note on the transcription in the paper: Eq. 10 is stated in terms of an
  ``I^{(1)}`` whose sign/scale mixes the up-weighting and removal
  conventions.  The form above is the one consistent with ε = −1/n removal
  (it reduces to the FO direction as m → 1) and is validated against
  retraining ground truth in the test suite — the property Figure 3 checks.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lapack

from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.influence.artifacts import ModelArtifacts
from repro.influence.estimators import InfluenceEstimator
from repro.influence.hessian import HessianSolver
from repro.models.base import TwiceDifferentiableClassifier
from repro.obs import trace
from repro.obs.metrics import StatsView

# Batched exact queries process at most this many subsets at a time, so the
# padded (block, r_max, p) downdate tensors stay chunk-bounded however large
# the batch is (mirrors estimators._PACKED_CHUNK).
_EXACT_BLOCK = 256

# A capacitance (or shifted-spectrum) eigenvalue ratio below this routes the
# subset to the dense fallback: the Woodbury solve would amplify rounding
# error past the batch == loop contract instead of failing loudly.
_EXACT_RCOND = 1e-10


class SecondOrderInfluence(InfluenceEstimator):
    """Eq. 10: group influence with the curvature correction.

    ``exact_batch_stats`` counts, cumulatively over all batched queries of
    the ``"exact"`` variant, how each subset was routed: ``"woodbury"``
    (capacitance downdate against the cached factorization),
    ``"fallback_size"`` (|S| ≥ p — refactorizing is no slower),
    ``"fallback_cond"`` (ill-conditioned shifted spectrum or capacitance,
    detected before solving), and ``"fallback_factors"`` (the model exposes
    no usable rank-one Hessian factors).  Every fallback runs the same
    per-subset dense refactorization as the scalar :meth:`param_change`.
    """

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metric: FairnessMetric,
        test_ctx: FairnessContext,
        damping: float = 0.0,
        variant: str = "exact",
        evaluation: str = "smooth",
        artifacts: ModelArtifacts | None = None,
    ) -> None:
        if variant not in ("exact", "series"):
            raise ValueError(f"variant must be 'exact' or 'series', got {variant!r}")
        super().__init__(model, X_train, y_train, metric, test_ctx, evaluation, artifacts)
        self.variant = variant
        self.damping = damping
        # Hessian, factorization, rank-one factors, and the eigenbasis
        # rotations all live in the (possibly shared) artifacts bundle:
        # estimators of different metrics / groups / variants with the same
        # damping reuse one factorization and one set of rotated caches.
        self.hessian = self.artifacts.hessian
        self.solver = self.artifacts.solver(damping)
        # Per-estimator registry: routing counts are asserted per instance
        # by the equivalence/fuzz suites, so the namespace is private, and
        # the lock inside StatsView.inc makes every bump exact under
        # concurrent batched queries (this retires the old lossy-increment
        # pragma on the fallback_factors site).
        self.exact_batch_stats = StatsView(
            {
                "woodbury": 0,
                "fallback_size": 0,
                "fallback_cond": 0,
                "fallback_factors": 0,
            },
            namespace="exact_batch",
        )

    def _extent_cache_spec(self) -> tuple:
        return ("second_order", self.variant, float(self.damping))

    def warm(self) -> "SecondOrderInfluence":
        super().warm()
        factors = self._hessian_factors()
        if self.variant == "exact" and factors is not None and factors[1].min() >= 0.0:
            _ = self.solver.eigendecomposition()
            _ = self.artifacts.exact_rotation(self.damping)
        return self

    def param_change(self, indices: np.ndarray) -> np.ndarray:
        # The whole per-subset preparation (validation, gradient sum, the
        # subset Hessian, the reduced matrix) is one leaf span so the dense
        # fallback's cost attribution lands on a measurable name.
        with trace.span("influence.subset_hessian") as prep_span:
            indices = self._subset_size_ok(indices)
            if indices.size == 0:
                return np.zeros(self.model.num_params)
            m, n = indices.size, self.num_train
            prep_span.set(m=int(m))
            g_s = self.per_sample_grads[indices].sum(axis=0)
            subset_hessian = self.model.hessian(
                self.X_train[indices], self.y_train[indices]
            )
            reduced = (
                n * self.hessian - m * subset_hessian
                if self.variant == "exact"
                else None
            )
        if reduced is not None:
            return HessianSolver(reduced, damping=self.damping).solve(g_s)
        u = self.solver.solve(g_s)
        correction = u - self.solver.solve(subset_hessian @ u)
        return u / (n - m) - (m / (n - m) ** 2) * correction

    def _param_change_from_masks(self, masks: np.ndarray) -> np.ndarray:
        """Batched Δθ's.

        The ``"series"`` variant only ever applies subset Hessians to
        vectors, so for models exposing rank-one Hessian factors the whole
        batch reduces to GEMMs against the cached factorization: one
        multi-RHS solve for ``u_S = H⁻¹ g_S``, three matrix products for
        every ``H_S u_S``, and one more multi-RHS solve for the correction.
        The ``"exact"`` variant solves a *different* reduced matrix
        ``n·H − m·H_S`` per subset; with rank-one factors that is a
        rank-|S| Woodbury downdate of a scalar-shifted base, so the batch
        becomes shifted solves in the cached eigenbasis plus one small
        capacitance system per subset (see the module docstring), with a
        per-subset dense-refactorization fallback.  Models without factor
        structure fall back to the scalar loop for both variants.  Both
        entry representations — dense (m, n) masks and packed uint8
        batches — funnel through this hook, so the lattice and the mining
        engine take the same fast path.
        """
        num_subsets = masks.shape[0]
        if num_subsets == 0:
            return np.zeros((0, self.model.num_params))
        factors = self._hessian_factors()
        if self.variant == "exact":
            if factors is None or factors[1].min() < 0.0:
                # No rank-one structure (or weights that cannot be √-split
                # into a symmetric downdate): every subset refactorizes.
                self.exact_batch_stats.inc("fallback_factors", num_subsets)
                return super()._param_change_from_masks(masks)
            return self._exact_param_change_from_masks(masks, factors)
        if factors is None:
            return super()._param_change_from_masks(masks)
        phi, weights, ridge = factors
        n = self.num_train
        p = self.model.num_params
        mask_f = masks.astype(np.float64)
        sizes = mask_f.sum(axis=1)
        grad_sums = self.artifacts.gradient_sums(masks)
        u = self.solver.solve_many(grad_sums)  # (m, p) rows = H⁻¹ g_S
        # H_S u_S = (1/|S|) φᵀ (1_S ⊙ w ⊙ (φ u_S)) + ridge·u_S, batched over
        # the subset axis by weighting the (n, m) projection with the masks.
        with trace.span("influence.gemm", m=num_subsets, n=n, p=p, kind="curvature") as s:
            s.add("gemm_flops", 4.0 * num_subsets * n * p)
            projections = phi @ u.T  # (n, m)
            weighted = (mask_f.T * weights[:, None]) * projections
            denom = np.where(sizes > 0, sizes, 1.0)
            hs_u = (phi.T @ weighted) / denom[None, :] + ridge * u.T  # (p, m)
        correction = u - self.solver.solve_many(hs_u.T)
        rest = n - sizes
        deltas = u / rest[:, None] - (sizes / rest**2)[:, None] * correction
        deltas[sizes == 0] = 0.0  # matches the scalar empty-subset shortcut
        return deltas

    def _exact_param_change_from_masks(
        self, masks: np.ndarray, factors: tuple[np.ndarray, np.ndarray, float]
    ) -> np.ndarray:
        """Woodbury-batched exact Δθ's (see the module docstring).

        For each subset S: ``(n·H − m·H_S + d·I) = B_m − V Vᵀ`` with
        ``B_m = n·H + (d − m·ridge)·I`` and ``V`` the √w-scaled curvature
        rows of S, so

            Δθ = B_m⁻¹ g_S + B_m⁻¹ V (I − Vᵀ B_m⁻¹ V)⁻¹ Vᵀ B_m⁻¹ g_S.

        ``B_m⁻¹`` rides the solver's cached eigendecomposition (the shift
        depends on |S|, so no single Cholesky factor can serve the batch);
        the capacitance systems are solved as padded block factorizations
        per _EXACT_BLOCK subsets with a per-subset conditioning detector
        (see :meth:`_solve_capacitance`).  Zero-curvature rows (w_i = 0)
        drop out of V exactly.  Subsets with |S| ≥ p curvature rows, a
        nonpositive shifted spectrum, or a capacitance condition estimate
        below _EXACT_RCOND are routed to the scalar dense path instead.
        """
        phi, weights, ridge = factors
        n, p = self.num_train, self.model.num_params
        d = self.damping
        d0 = self.solver.damping_used
        eigvals, eigvecs = self.solver.eigendecomposition()
        curved = weights > 0.0
        all_curved = bool(curved.all())
        # Eigenbasis-rotated per-sample gradients and √w-scaled curvature
        # rows, built lazily on the first batched exact query (θ* is fixed,
        # so they never change) and shared through the artifacts bundle:
        # masks hit the eigenbasis directly and the per-call rotation GEMMs
        # disappear — for every estimator riding the bundle, not just this
        # one.
        psg_rot, phi_rot = self.artifacts.exact_rotation(self.damping)
        stats = self.exact_batch_stats
        deltas = np.empty((masks.shape[0], p))
        for start in range(0, masks.shape[0], _EXACT_BLOCK):
            block = masks[start : start + _EXACT_BLOCK]
            sizes = block.sum(axis=1)
            # B_m = n·(M + s·I) for the solver's damped matrix M, so one
            # cached eigendecomposition serves every subset size.
            shifts = (d - sizes * ridge) / n - d0
            spectrum_lo = eigvals[0] + shifts
            spectrum_ok = spectrum_lo > _EXACT_RCOND * np.abs(eigvals[-1] + shifts)
            blockc = block if all_curved else block & curved[None, :]
            ranks = sizes if all_curved else blockc.sum(axis=1)
            # A-priori conditioning certificate: the damped reduced matrix
            # is Σ_{i∉S} w φφᵀ + γ·I with γ = (n−m)·ridge + d, so
            # λmin(C) ≥ γ / λmax(B_m) and λmax(C) ≤ 1.  Subsets whose bound
            # clears the routing threshold with three orders of margin are
            # *provably* well-conditioned and skip per-subset detection
            # entirely; only the rest (e.g. unregularized models) pay it.
            gamma = (n - sizes) * ridge + d
            spectrum_hi = n * (eigvals[-1] + shifts)
            assured = (spectrum_hi > 0) & (gamma > _EXACT_RCOND * 1e3 * spectrum_hi)
            take = spectrum_ok & (ranks < p)
            stats.inc("fallback_size", int((ranks >= p).sum()))
            stats.inc("fallback_cond", int((~spectrum_ok & (ranks < p)).sum()))
            wood = np.flatnonzero(take)
            if wood.size:
                # Process the Woodbury subsets rank-sorted in power-of-two
                # buckets: the capacitance stage pads every subset in a
                # bucket to the widest rank, so bucketing bounds the padding
                # waste at 2x instead of letting one wide subset inflate the
                # whole block.
                wood = wood[np.argsort(ranks[wood], kind="stable")]
                # Everything below runs in the *whitened* eigenbasis of the
                # damped matrix: with s = 1/√denom, B_m⁻¹ = diag(s)·diag(s),
                # the capacitance is the symmetric I − Tsq Tsqᵀ for
                # Tsq = V Q diag(s), and only the finished Δθ's rotate back.
                sqrt_inv = 1.0 / np.sqrt(n * (eigvals[None, :] + shifts[wood, None]))
                with trace.span("influence.gemm", m=int(wood.size), n=n, p=p) as sp:
                    sp.add("gemm_flops", 2.0 * wood.size * n * p)
                    g_hat = (block[wood].astype(np.float64) @ psg_rot) * sqrt_inv
                # np.nonzero walks the gathered mask rows in batch order, so
                # the flat curvature rows line up with the rank-sorted
                # subsets.
                cat = np.nonzero(blockc[wood])[1]
                offsets = np.concatenate([[0], np.cumsum(ranks[wood])])
                wr = ranks[wood]
                bad = np.zeros(wood.size, dtype=bool)
                block_assured = bool(assured[wood].all())
                with trace.span("influence.capacitance", subsets=int(wood.size)):
                    lo = 0
                    while lo < wood.size:
                        width = max(int(wr[lo]), 1)
                        hi = int(np.searchsorted(wr, 2 * width, side="left"))
                        hi = max(hi, lo + 1)
                        bad[lo:hi] = self._exact_capacitance_correction(
                            g_hat[lo:hi],
                            sqrt_inv[lo:hi],
                            phi_rot,
                            cat[offsets[lo] : offsets[hi]],
                            wr[lo:hi],
                            block_assured,
                        )
                        lo = hi
                stats.inc("fallback_cond", int(bad.sum()))
                stats.inc("woodbury", int((~bad).sum()))
                with trace.span("influence.gemm", m=int((~bad).sum()), n=p, p=p, kind="rotate") as sp:
                    sp.add("gemm_flops", 2.0 * (~bad).sum() * p * p)
                    deltas[start + wood[~bad]] = (g_hat * sqrt_inv)[~bad] @ eigvecs.T
                take[wood[bad]] = False
            fallback = np.flatnonzero(~take)
            if fallback.size:
                with trace.span("influence.dense_fallback", subsets=int(fallback.size)):
                    for j in fallback:
                        deltas[start + j] = self.param_change(np.flatnonzero(block[j]))
        return deltas

    def _exact_capacitance_correction(
        self,
        g_hat: np.ndarray,
        sqrt_inv: np.ndarray,
        phi_rot: np.ndarray,
        cat: np.ndarray,
        ranks: np.ndarray,
        assured: bool = False,
    ) -> np.ndarray:
        """Apply ``(I − Tsq Tsqᵀ)``'s Woodbury correction to ``g_hat``.

        In the whitened basis the downdated solve is simply

            Δθ_hat = ĝ + Tsqᵀ C⁻¹ Tsq ĝ,   C = I − Tsq Tsqᵀ,

        with ``Tsq`` the bucket's √denom-whitened curvature rows, gathered
        by ``cat`` (training-row index per flat row, back to back per
        subset) and scattered into a tensor padded to the bucket's widest
        downdate rank.  Padding rows of Tsq are zero, so each padded
        capacitance is the true one plus an identity block and the
        block-batched factorizations stay exact.  The correction is added
        to ``g_hat`` in place.  Returns the boolean mask of subsets whose
        capacitance failed the conditioning test (their rows are left
        unfinished — the caller reroutes them to the dense path).
        """
        num, rmax = len(ranks), int(ranks.max(initial=0))
        if rmax == 0:
            return np.zeros(num, dtype=bool)
        row_of = np.repeat(np.arange(num), ranks)
        slot_of = np.arange(len(row_of)) - np.repeat(np.cumsum(ranks) - ranks, ranks)
        Tsq = np.zeros((num, rmax, phi_rot.shape[1]))
        Tsq[row_of, slot_of] = phi_rot[cat] * sqrt_inv[row_of]
        C = np.eye(rmax)[None, :, :] - Tsq @ Tsq.transpose(0, 2, 1)
        t = (Tsq @ g_hat[:, :, None])[:, :, 0]
        z, bad = self._solve_capacitance(C, t, assured)
        g_hat[~bad] += (z[:, None, :] @ Tsq)[:, 0, :][~bad]
        return bad

    def _solve_capacitance(
        self, C: np.ndarray, t: np.ndarray, assured: bool
    ) -> tuple[np.ndarray, np.ndarray]:
        """Solve every capacitance system ``C_j z_j = t_j`` in the block.

        ``assured=True`` means every subset carries the a-priori
        positive-definiteness/conditioning certificate (see the caller), so
        one batched solve is all that is needed.  Without the certificate:
        one batched Cholesky over the stack — which is also the
        positive-definiteness test — with ill-conditioning screened by the
        Cholesky pivot ratio min(L_jj²)/max(L_jj²) (a near-singular
        capacitance shows up as a collapsed pivot); only the screened
        suspects pay a LAPACK ``dpocon`` reciprocal condition estimate
        (the screen is six orders of magnitude more lenient than the
        routing threshold, so a subset must clear a wide margin to skip
        confirmation).  If any capacitance in the stack is not even PD the
        whole bucket retries on the robust eigendecomposition path, which
        pins down the offending subsets individually.  Returns
        ``(z, bad)``; rows of ``z`` flagged bad are unusable and must be
        rerouted.
        """
        if assured:
            return np.linalg.solve(C, t[:, :, None])[:, :, 0], np.zeros(C.shape[0], dtype=bool)
        try:
            L = np.linalg.cholesky(C)
        except np.linalg.LinAlgError:
            return self._solve_capacitance_eigh(C, t)
        pivots = np.diagonal(L, axis1=1, axis2=2) ** 2
        suspect = pivots.min(axis=1) <= (_EXACT_RCOND * 1e6) * pivots.max(axis=1)
        bad = np.zeros(C.shape[0], dtype=bool)
        for j in np.flatnonzero(suspect):
            anorm = float(np.abs(C[j]).sum(axis=0).max())
            rcond, info = lapack.dpocon(L[j], anorm, uplo="L")
            bad[j] = info != 0 or rcond <= _EXACT_RCOND
        return np.linalg.solve(C, t[:, :, None])[:, :, 0], bad

    @staticmethod
    def _solve_capacitance_eigh(C: np.ndarray, t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lam, Qc = np.linalg.eigh(C)
        bad = (lam[:, 0] <= 0.0) | (lam[:, 0] <= _EXACT_RCOND * lam[:, -1])
        lam_safe = np.where(lam <= 0.0, 1.0, lam)
        t_hat = (Qc.transpose(0, 2, 1) @ t[:, :, None])[:, :, 0]
        z = (Qc @ (t_hat / lam_safe)[:, :, None])[:, :, 0]
        return z, bad

    def _hessian_factors(self) -> tuple[np.ndarray, np.ndarray, float] | None:
        return self.artifacts.hessian_factors()
