"""Second-order group influence (paper Eq. 10, after Basu et al. 2020).

First-order group influence assumes points are removed independently; for
coherent subsets — exactly what Gopher's patterns describe — the points are
correlated and the assumption breaks down.  The second-order correction
re-introduces the subset's own curvature H_S = (1/m) Σ_{z∈S} ∇²ℓ(z, θ*).

Two variants are provided:

* ``variant="exact"`` (default) — the Newton step on the reduced objective:

      Δθ = (n·H − m·H_S)⁻¹ g_S.

  This is the closed form the series below truncates; it is exact for
  quadratic losses and needs one extra factorization per subset.

* ``variant="series"`` — the first-order Neumann expansion of that solve,
  matching the structure of the paper's Eq. 10:

      Δθ ≈ (1/(n−m)) H⁻¹ g_S − (m/(n−m)²)(I − H⁻¹H_S) H⁻¹ g_S.

  Note on the transcription in the paper: Eq. 10 is stated in terms of an
  ``I^{(1)}`` whose sign/scale mixes the up-weighting and removal
  conventions.  The form above is the one consistent with ε = −1/n removal
  (it reduces to the FO direction as m → 1) and is validated against
  retraining ground truth in the test suite — the property Figure 3 checks.
"""

from __future__ import annotations

import numpy as np

from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.influence.estimators import InfluenceEstimator
from repro.influence.hessian import HessianSolver
from repro.models.base import TwiceDifferentiableClassifier


class SecondOrderInfluence(InfluenceEstimator):
    """Eq. 10: group influence with the curvature correction."""

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metric: FairnessMetric,
        test_ctx: FairnessContext,
        damping: float = 0.0,
        variant: str = "exact",
        evaluation: str = "smooth",
    ) -> None:
        if variant not in ("exact", "series"):
            raise ValueError(f"variant must be 'exact' or 'series', got {variant!r}")
        super().__init__(model, X_train, y_train, metric, test_ctx, evaluation)
        self.variant = variant
        self.damping = damping
        self.hessian = model.hessian(self.X_train, self.y_train)
        self.solver = HessianSolver(self.hessian, damping=damping)

    def param_change(self, indices: np.ndarray) -> np.ndarray:
        indices = self._subset_size_ok(indices)
        if indices.size == 0:
            return np.zeros(self.model.num_params)
        g_s = self.per_sample_grads[indices].sum(axis=0)
        m, n = indices.size, self.num_train
        subset_hessian = self.model.hessian(self.X_train[indices], self.y_train[indices])
        if self.variant == "exact":
            reduced = n * self.hessian - m * subset_hessian
            return HessianSolver(reduced, damping=self.damping).solve(g_s)
        u = self.solver.solve(g_s)
        correction = u - self.solver.solve(subset_hessian @ u)
        return u / (n - m) - (m / (n - m) ** 2) * correction
