"""Approximating the causal responsibility of training-data subsets (§4.1).

Retraining a model for every candidate subset is the ground truth but is far
too slow for search.  This package provides the paper's three approximations
and the ground truth itself behind one interface:

* :class:`FirstOrderInfluence` — Eq. 9: sum of per-point influence functions.
* :class:`SecondOrderInfluence` — Eq. 10 (Basu et al.): adds the group
  curvature correction that captures correlations within the subset.
* :class:`OneStepGradientDescent` — Eq. 13: a single gradient step from the
  optimum, used mainly for update-based explanations.
* :class:`RetrainInfluence` — warm-started refitting, the ground truth.

All estimators report the *bias change* ΔF = F(θ_after) − F(θ_before) for
removing a subset, and the causal responsibility R = −ΔF / F(θ) of
Definition 3.2.
"""

from repro.influence.artifacts import ModelArtifacts
from repro.influence.estimators import InfluenceEstimator, make_estimator
from repro.influence.first_order import FirstOrderInfluence
from repro.influence.hessian import HessianSolver
from repro.influence.one_step_gd import OneStepGradientDescent, auto_learning_rate
from repro.influence.parallel import RetrainTask, retrain_thetas
from repro.influence.retrain import RetrainInfluence
from repro.influence.second_order import SecondOrderInfluence

__all__ = [
    "FirstOrderInfluence",
    "HessianSolver",
    "InfluenceEstimator",
    "ModelArtifacts",
    "OneStepGradientDescent",
    "RetrainInfluence",
    "RetrainTask",
    "SecondOrderInfluence",
    "auto_learning_rate",
    "make_estimator",
    "retrain_thetas",
]
