"""Metric-independent start-up state shared across influence estimators.

Every influence estimator's "start-up" cost (the fixed cost the paper's
Figure 5 measures) splits cleanly in two:

* **per-model** — the per-sample training gradient matrix, the training
  Hessian, its Cholesky factorization and (for the Woodbury-batched exact
  second-order variant) its eigendecomposition with the rotated gradient /
  curvature caches, the rank-one Hessian factors, and the one-step "auto"
  learning rate.  None of these depend on the fairness metric, the
  protected group, or the estimator's evaluation mode — only on the fitted
  model and the training matrix.
* **per-query** — ∇_θF of the metric surrogate, the original bias, and the
  (metric, group)-bound :class:`~repro.fairness.metrics.FairnessContext`.

:class:`ModelArtifacts` owns the per-model half.  An interactive audit
("every metric × every protected attribute × several estimator variants of
one trained model" — the workload :class:`repro.core.AuditSession` fans
out) builds one bundle and hands it to every estimator via
``make_estimator(..., artifacts=...)``; each estimator then only pays its
cheap per-query state.  Without an explicit bundle every estimator builds
a private one, so the single-estimator construction path is unchanged.

``stats`` counts the heavy builds (``per_sample_grad_builds``,
``hessian_builds``, ``hessian_factorizations``, ``exact_rotation_builds``)
so callers — the audit benchmark in particular — can *assert* that a
multi-query workload paid for each exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.influence.hessian import HessianSolver
from repro.models.base import TwiceDifferentiableClassifier


class ModelArtifacts:
    """Shared caches bound to one fitted model and one training matrix.

    Parameters
    ----------
    model:
        A *fitted* classifier.  The bundle snapshots ``model.theta`` at
        construction and refuses to serve estimators if the parameters
        change afterwards — silently mixing caches from two different
        optima is the stale-reuse bug class sessions make likely.
    X_train / y_train:
        The encoded training data the model was fitted on.

    All caches are lazy: a first-order estimator never triggers the
    eigendecomposition, a retraining estimator never builds the Hessian.
    """

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
    ) -> None:
        if model.theta is None:
            raise ValueError("model must be fitted before building influence artifacts")
        self.model = model
        self.X_train = np.asarray(X_train, dtype=np.float64)
        self.y_train = np.asarray(y_train)
        self.theta = np.asarray(model.theta, dtype=np.float64).copy()
        self.num_train = len(self.X_train)
        self._per_sample_grads: np.ndarray | None = None
        self._hessian: np.ndarray | None = None
        self._solvers: dict[float, HessianSolver] = {}
        self._factors: tuple[np.ndarray, np.ndarray, float] | None | str = "unset"
        self._exact_rot: dict[float, tuple[np.ndarray, np.ndarray]] = {}
        self._auto_learning_rate: float | None = None
        self.stats = {
            "per_sample_grad_builds": 0,
            "hessian_builds": 0,
            "hessian_factorizations": 0,
            "exact_rotation_builds": 0,
        }

    # ------------------------------------------------------------------
    def check_compatible(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
    ) -> None:
        """Raise unless (model, data, θ) still match what was cached.

        Estimators call this when handed a shared bundle.  The θ check is
        the important one: refitting the model invalidates every cache
        here, and the failure mode without the check is silently wrong
        influence scores.
        """
        if model is not self.model:
            raise ValueError(
                "artifacts were built for a different model instance; build a new "
                "ModelArtifacts (or a new AuditSession) per fitted model"
            )
        if self.model.theta is None or not np.array_equal(self.theta, self.model.theta):
            raise ValueError(
                "model parameters changed since the artifacts were built; the cached "
                "gradients and factorizations belong to the old optimum — rebuild the "
                "artifacts after refitting"
            )
        X = np.asarray(X_train)
        if X is not self.X_train and (
            X.shape != self.X_train.shape or not np.array_equal(X, self.X_train)
        ):
            raise ValueError(
                f"artifacts were built on a training matrix of shape "
                f"{self.X_train.shape}; got a different matrix of shape {X.shape}"
            )
        y = np.asarray(y_train)
        if y is not self.y_train and not np.array_equal(y, self.y_train):
            raise ValueError("artifacts were built on different training labels")

    # ------------------------------------------------------------------
    @property
    def per_sample_grads(self) -> np.ndarray:
        """∇_θℓ(z_i, θ*) for all training rows, shape (n, p) — built once."""
        if self._per_sample_grads is None:
            self._per_sample_grads = self.model.per_sample_grads(self.X_train, self.y_train)
            self.stats["per_sample_grad_builds"] += 1
        return self._per_sample_grads

    @property
    def hessian(self) -> np.ndarray:
        """The mean training Hessian H(θ*) — built once."""
        if self._hessian is None:
            self._hessian = self.model.hessian(self.X_train, self.y_train)
            self.stats["hessian_builds"] += 1
        return self._hessian

    def solver(self, damping: float = 0.0) -> HessianSolver:
        """The shared :class:`HessianSolver` for a damping value.

        One factorization (and, lazily, one eigendecomposition) serves
        every estimator requesting the same damping — estimators of
        different metrics, groups, and second-order variants all hit the
        same cached factor.
        """
        key = float(damping)
        if key not in self._solvers:
            self._solvers[key] = HessianSolver(self.hessian, damping=key)
            self.stats["hessian_factorizations"] += 1
        return self._solvers[key]

    def hessian_factors(self) -> tuple[np.ndarray, np.ndarray, float] | None:
        """The model's rank-one Hessian factors, or None if unavailable."""
        if self._factors == "unset":
            try:
                self._factors = self.model.hessian_factors(self.X_train, self.y_train)
            except NotImplementedError:
                self._factors = None
        return self._factors  # type: ignore[return-value]

    def exact_rotation(self, damping: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Eigenbasis-rotated (per-sample grads, √w-scaled curvature rows).

        The Woodbury-batched exact second-order path works in the
        eigenbasis of the damped Hessian; rotating the (n, p) gradient and
        curvature matrices costs two n·p² GEMMs, paid once per damping and
        reused by every exact estimator sharing the bundle (θ* is fixed,
        so the rotation never changes).  Requires usable factors — callers
        check :meth:`hessian_factors` first.
        """
        key = float(damping)
        if key not in self._exact_rot:
            factors = self.hessian_factors()
            if factors is None:
                raise ValueError("model exposes no rank-one Hessian factors to rotate")
            phi, weights, _ = factors
            eigvecs = self.solver(key).eigendecomposition()[1]
            curved = weights > 0.0
            sqrt_w = np.sqrt(weights, where=curved, out=np.zeros_like(weights))
            self._exact_rot[key] = (
                self.per_sample_grads @ eigvecs,
                (phi * sqrt_w[:, None]) @ eigvecs,
            )
            self.stats["exact_rotation_builds"] += 1
        return self._exact_rot[key]

    def auto_learning_rate(self) -> float:
        """η = 1/λ_max(H), the shared one-step surrogate step size."""
        if self._auto_learning_rate is None:
            from repro.influence.one_step_gd import auto_learning_rate

            self._auto_learning_rate = auto_learning_rate(self.hessian)
        return self._auto_learning_rate
