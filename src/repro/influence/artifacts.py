"""Metric-independent start-up state shared across influence estimators.

Every influence estimator's "start-up" cost (the fixed cost the paper's
Figure 5 measures) splits cleanly in two:

* **per-model** — the per-sample training gradient matrix, the training
  Hessian, its Cholesky factorization and (for the Woodbury-batched exact
  second-order variant) its eigendecomposition with the rotated gradient /
  curvature caches, the rank-one Hessian factors, and the one-step "auto"
  learning rate.  None of these depend on the fairness metric, the
  protected group, or the estimator's evaluation mode — only on the fitted
  model and the training matrix.
* **per-query** — ∇_θF of the metric surrogate, the original bias, and the
  (metric, group)-bound :class:`~repro.fairness.metrics.FairnessContext`.

:class:`ModelArtifacts` owns the per-model half.  An interactive audit
("every metric × every protected attribute × several estimator variants of
one trained model" — the workload :class:`repro.core.AuditSession` fans
out) builds one bundle and hands it to every estimator via
``make_estimator(..., artifacts=...)``; each estimator then only pays its
cheap per-query state.  Without an explicit bundle every estimator builds
a private one, so the single-estimator construction path is unchanged.

``stats`` counts the heavy builds (``per_sample_grad_builds``,
``hessian_builds``, ``hessian_factorizations``, ``exact_rotation_builds``)
so callers — the audit benchmark in particular — can *assert* that a
multi-query workload paid for each exactly once.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.influence.hessian import HessianSolver
from repro.models.base import TwiceDifferentiableClassifier
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry, StatsView


class ModelArtifacts:
    """Shared caches bound to one fitted model and one training matrix.

    Parameters
    ----------
    model:
        A *fitted* classifier.  The bundle snapshots ``model.theta`` at
        construction and refuses to serve estimators if the parameters
        change afterwards — silently mixing caches from two different
        optima is the stale-reuse bug class sessions make likely.
    X_train / y_train:
        The encoded training data the model was fitted on.

    All caches are lazy: a first-order estimator never triggers the
    eigendecomposition, a retraining estimator never builds the Hessian.
    """

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if model.theta is None:
            raise ValueError("model must be fitted before building influence artifacts")
        self.model = model
        self.X_train = np.asarray(X_train, dtype=np.float64)
        self.y_train = np.asarray(y_train)
        self.theta = np.asarray(model.theta, dtype=np.float64).copy()
        self.num_train = len(self.X_train)
        self._per_sample_grads: np.ndarray | None = None
        self._hessian: np.ndarray | None = None
        self._solvers: dict[float, HessianSolver] = {}
        self._factors: tuple[np.ndarray, np.ndarray, float] | None | str = "unset"
        self._exact_rot: dict[float, tuple[np.ndarray, np.ndarray]] = {}
        self._auto_learning_rate: float | None = None
        # Extent caches: packed-mask bytes → metric-independent per-row
        # results (g_S gradient sums; per-estimator-spec Δθ rows).  Off by
        # default so bare estimators keep per-instance accounting; sessions
        # switch them on via enable_extent_caching().
        self._extent_caching = False
        self._grad_sum_cache: dict[bytes, np.ndarray] = {}
        self._param_change_cache: dict[tuple, np.ndarray] = {}
        self._update_state: tuple[np.ndarray, float] | None = None
        # One re-entrant lock covers every lazy build and extent cache, so a
        # cold bundle can serve mixed concurrent queries: exact_rotation
        # re-enters hessian_factors/solver/per_sample_grads while held.
        self._lock = threading.RLock()
        # Monotone staleness token: bumped by apply_edit.  Estimators record
        # it at construction and refuse to score once it moves on.
        self.version = 0
        self.stats = StatsView(
            {
                "per_sample_grad_builds": 0,
                "hessian_builds": 0,
                "hessian_factorizations": 0,
                "rank_one_factor_builds": 0,
                "learning_rate_builds": 0,
                "exact_rotation_builds": 0,
                "edits": 0,
                "solver_updates": 0,
                "exact_rotation_patches": 0,
                "gradient_sum_cache_hits": 0,
                "gradient_sum_cache_misses": 0,
                "param_change_cache_hits": 0,
                "param_change_cache_misses": 0,
                "update_context_builds": 0,
            },
            registry=metrics,
            namespace="influence",
        )

    # ------------------------------------------------------------------
    def check_compatible(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
    ) -> None:
        """Raise unless (model, data, θ) still match what was cached.

        Estimators call this when handed a shared bundle.  The θ check is
        the important one: refitting the model invalidates every cache
        here, and the failure mode without the check is silently wrong
        influence scores.
        """
        if model is not self.model:
            raise ValueError(
                "artifacts were built for a different model instance; build a new "
                "ModelArtifacts (or a new AuditSession) per fitted model"
            )
        if self.model.theta is None or not np.array_equal(self.theta, self.model.theta):
            raise ValueError(
                "model parameters changed since the artifacts were built; the cached "
                "gradients and factorizations belong to the old optimum — rebuild the "
                "artifacts after refitting"
            )
        X = np.asarray(X_train)
        if X is not self.X_train and (
            X.shape != self.X_train.shape or not np.array_equal(X, self.X_train)
        ):
            raise ValueError(
                f"artifacts were built on a training matrix of shape "
                f"{self.X_train.shape}; got a different matrix of shape {X.shape}"
            )
        y = np.asarray(y_train)
        if y is not self.y_train and not np.array_equal(y, self.y_train):
            raise ValueError("artifacts were built on different training labels")

    # ------------------------------------------------------------------
    @property
    def per_sample_grads(self) -> np.ndarray:
        """∇_θℓ(z_i, θ*) for all training rows, shape (n, p) — built once."""
        if self._per_sample_grads is None:
            with self._lock:
                if self._per_sample_grads is None:
                    trace.add("cache_misses")
                    with trace.span("artifacts.per_sample_grads", n=self.num_train):
                        self._per_sample_grads = self.model.per_sample_grads(
                            self.X_train, self.y_train
                        )
                    self.stats.inc("per_sample_grad_builds")
                else:
                    trace.add("cache_hits")
        else:
            trace.add("cache_hits")
        return self._per_sample_grads

    @property
    def hessian(self) -> np.ndarray:
        """The mean training Hessian H(θ*) — built once."""
        if self._hessian is None:
            with self._lock:
                if self._hessian is None:
                    trace.add("cache_misses")
                    with trace.span("artifacts.hessian", n=self.num_train):
                        self._hessian = self.model.hessian(self.X_train, self.y_train)
                    self.stats.inc("hessian_builds")
                else:
                    trace.add("cache_hits")
        else:
            trace.add("cache_hits")
        return self._hessian

    def solver(self, damping: float = 0.0) -> HessianSolver:
        """The shared :class:`HessianSolver` for a damping value.

        One factorization (and, lazily, one eigendecomposition) serves
        every estimator requesting the same damping — estimators of
        different metrics, groups, and second-order variants all hit the
        same cached factor.
        """
        key = float(damping)
        if key not in self._solvers:
            with self._lock:
                if key not in self._solvers:
                    trace.add("cache_misses")
                    self._solvers[key] = HessianSolver(self.hessian, damping=key)
                    self.stats.inc("hessian_factorizations")
                else:
                    trace.add("cache_hits")
        else:
            trace.add("cache_hits")
        return self._solvers[key]

    def hessian_factors(self) -> tuple[np.ndarray, np.ndarray, float] | None:
        """The model's rank-one Hessian factors, or None if unavailable."""
        if self._factors == "unset":
            with self._lock:
                if self._factors == "unset":
                    trace.add("cache_misses")
                    try:
                        self._factors = self.model.hessian_factors(
                            self.X_train, self.y_train
                        )
                    except NotImplementedError:
                        self._factors = None
                    self.stats.inc("rank_one_factor_builds")
                else:
                    trace.add("cache_hits")
        else:
            trace.add("cache_hits")
        return self._factors  # type: ignore[return-value]

    def exact_rotation(self, damping: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Eigenbasis-rotated (per-sample grads, √w-scaled curvature rows).

        The Woodbury-batched exact second-order path works in the
        eigenbasis of the damped Hessian; rotating the (n, p) gradient and
        curvature matrices costs two n·p² GEMMs, paid once per damping and
        reused by every exact estimator sharing the bundle (θ* is fixed,
        so the rotation never changes).  Requires usable factors — callers
        check :meth:`hessian_factors` first.
        """
        key = float(damping)
        if key not in self._exact_rot:
            with self._lock:
                if key not in self._exact_rot:
                    trace.add("cache_misses")
                    with trace.span("artifacts.exact_rotation", n=self.num_train) as s:
                        factors = self.hessian_factors()
                        if factors is None:
                            raise ValueError(
                                "model exposes no rank-one Hessian factors to rotate"
                            )
                        phi, weights, _ = factors
                        eigvecs = self.solver(key).eigendecomposition()[1]
                        curved = weights > 0.0
                        sqrt_w = np.sqrt(weights, where=curved, out=np.zeros_like(weights))
                        p = eigvecs.shape[0]
                        s.add("gemm_flops", 2.0 * 2 * self.num_train * p * p)
                        self._exact_rot[key] = (
                            self.per_sample_grads @ eigvecs,
                            (phi * sqrt_w[:, None]) @ eigvecs,
                        )
                    self.stats.inc("exact_rotation_builds")
                else:
                    trace.add("cache_hits")
        else:
            trace.add("cache_hits")
        return self._exact_rot[key]

    # ------------------------------------------------------------------
    def apply_edit(
        self,
        remove_indices=(),
        relabel_indices=(),
        relabel_labels=(),
        X_add: np.ndarray | None = None,
        y_add: np.ndarray | None = None,
    ) -> None:
        """Patch every built cache for a training-data edit, in place.

        The edit semantics mirror :class:`repro.datasets.DataEdit` after
        encoding: indices refer to the *current* training matrix, the
        application order is relabel → remove → add, removal preserves row
        order, and added rows are appended.  ``X_add`` must already be
        encoded with the same encoder as ``X_train``
        (:meth:`repro.core.AuditSession.apply_edit` does the translation).

        Nothing is rebuilt.  The Hessian is patched through the subset
        identity ``n'·H' = n·H − k·H(removed) + k·H(added) + Δ(relabelled)``
        (the L2 terms cancel exactly); the gradient matrix, rank-one
        factors, and exact-rotation row caches are patched row-wise; and
        every cached :class:`HessianSolver` is advanced through
        :meth:`HessianSolver.updated` — a rank-k eigenbasis update when the
        model exposes Hessian factors, a dense congruence otherwise, never
        a Cholesky refactorization (``hessian_factorizations`` stays put;
        the new work lands under ``solver_updates`` /
        ``exact_rotation_patches``).  Unbuilt caches stay lazy and will be
        built against the edited data on first use.

        θ is *not* refit — influence debugging asks "how would the bias
        move if we trained on the edited data", and every estimator measures
        that from the current optimum.  The bump of :attr:`version`
        invalidates estimators constructed against the pre-edit state.
        """
        if self.model.theta is None or not np.array_equal(self.theta, self.model.theta):
            raise ValueError(
                "model parameters changed since the artifacts were built; rebuild "
                "the artifacts instead of editing them"
            )
        remove = np.asarray(remove_indices, dtype=np.int64).reshape(-1)
        relabel = np.asarray(relabel_indices, dtype=np.int64).reshape(-1)
        relabels = np.asarray(relabel_labels).reshape(-1)
        n = self.num_train
        for name, idx in (("remove_indices", remove), ("relabel_indices", relabel)):
            if idx.size and (idx.min() < 0 or idx.max() >= n):
                raise IndexError(f"{name} out of range for {n} training rows")
            if idx.size > 1 and np.unique(idx).size != idx.size:
                raise ValueError(f"{name} contains duplicate indices")
        if np.intersect1d(remove, relabel).size:
            raise ValueError("a row cannot be both removed and relabelled")
        if relabels.shape != relabel.shape:
            raise ValueError(
                f"relabel_labels has {relabels.size} entries for {relabel.size} rows"
            )
        if (X_add is None) != (y_add is None):
            raise ValueError("X_add and y_add must be given together")
        if X_add is not None:
            X_add = np.asarray(X_add, dtype=np.float64)
            y_add = np.asarray(y_add).reshape(-1)
            if X_add.ndim != 2 or X_add.shape[1] != self.X_train.shape[1]:
                raise ValueError(
                    f"X_add must have shape (k, {self.X_train.shape[1]}), "
                    f"got {X_add.shape}"
                )
            if len(y_add) != len(X_add):
                raise ValueError("X_add and y_add lengths differ")
        k_add = 0 if X_add is None else len(X_add)
        n_new = n - remove.size + k_add
        if n_new <= 0:
            raise ValueError("edit would leave the training set empty")
        if not (remove.size or relabel.size or k_add):
            raise ValueError("edit must remove, relabel, or add at least one row")
        model = self.model

        # Post-relabel label vector over the pre-edit rows.
        y_patched = self.y_train
        if relabel.size:
            y_patched = y_patched.copy()
            y_patched[relabel] = relabels
        keep = np.ones(n, dtype=bool)
        keep[remove] = False

        # -- mean Hessian: subset-Hessian identity, L2 terms cancel -------
        new_hessian: np.ndarray | None = None
        if self._hessian is not None:
            total = self._hessian * n
            if relabel.size:
                X_rel = self.X_train[relabel]
                total = total + relabel.size * (
                    model.hessian(X_rel, y_patched[relabel])
                    - model.hessian(X_rel, self.y_train[relabel])
                )
            if remove.size:
                total = total - remove.size * model.hessian(
                    self.X_train[remove], self.y_train[remove]
                )
            if k_add:
                total = total + k_add * model.hessian(X_add, y_add)
            new_hessian = total / n_new

        # -- fresh per-row state the patches below splice in --------------
        grads_rel = grads_add = None
        if self._per_sample_grads is not None:
            if relabel.size:
                grads_rel = model.per_sample_grads(
                    self.X_train[relabel], y_patched[relabel]
                )
            if k_add:
                grads_add = model.per_sample_grads(X_add, y_add)
        phi_rel = w_rel = phi_add = w_add = None
        update_vectors = update_weights = None
        factors = self._factors if isinstance(self._factors, tuple) else None
        if factors is not None:
            phi_old, w_old, l2_ridge = factors
            if relabel.size:
                phi_rel, w_rel, _ = model.hessian_factors(
                    self.X_train[relabel], y_patched[relabel]
                )
            if k_add:
                phi_add, w_add, _ = model.hessian_factors(X_add, y_add)
            # U rows / signed weights expressing Σ'wφφᵀ − Σwφφᵀ as U'diag(c)U.
            vec_parts, weight_parts = [], []
            if relabel.size:
                vec_parts += [phi_old[relabel], phi_rel]
                weight_parts += [-w_old[relabel], w_rel]
            if remove.size:
                vec_parts.append(phi_old[remove])
                weight_parts.append(-w_old[remove])
            if k_add:
                vec_parts.append(phi_add)
                weight_parts.append(w_add)
            if vec_parts:
                update_vectors = np.vstack(vec_parts)
                update_weights = np.concatenate(weight_parts) / n_new

        # -- solvers (and their exact-rotation row caches) -----------------
        scale = n / n_new
        for key, old_solver in list(self._solvers.items()):
            if new_hessian is None:
                raise RuntimeError("solver cache exists without a built hessian")
            if update_vectors is not None:
                shift = (old_solver.damping_used + l2_ridge) * (1.0 - scale)
                new_solver, W = old_solver.updated(
                    new_hessian,
                    update_vectors=update_vectors,
                    update_weights=update_weights,
                    scale=scale,
                    shift=shift,
                )
            else:
                new_solver, W = old_solver.updated(new_hessian)
            if key in self._exact_rot:
                Q = old_solver.eigendecomposition()[1]
                grad_rot, curve_rot = self._exact_rot[key]
                if relabel.size:
                    grad_rot = grad_rot.copy()
                    curve_rot = curve_rot.copy()
                    curved = w_rel > 0.0
                    sqrt_w = np.sqrt(w_rel, where=curved, out=np.zeros_like(w_rel))
                    grad_rot[relabel] = grads_rel @ Q
                    curve_rot[relabel] = (phi_rel * sqrt_w[:, None]) @ Q
                grad_rot = grad_rot[keep]
                curve_rot = curve_rot[keep]
                if k_add:
                    curved = w_add > 0.0
                    sqrt_w = np.sqrt(w_add, where=curved, out=np.zeros_like(w_add))
                    grad_rot = np.vstack([grad_rot, grads_add @ Q])
                    curve_rot = np.vstack([curve_rot, (phi_add * sqrt_w[:, None]) @ Q])
                self._exact_rot[key] = (grad_rot @ W, curve_rot @ W)
                self.stats.inc("exact_rotation_patches")
            self._solvers[key] = new_solver
            self.stats.inc("solver_updates")

        # -- row-wise caches and the data itself ---------------------------
        if self._per_sample_grads is not None:
            grads = self._per_sample_grads
            if relabel.size:
                grads = grads.copy()
                grads[relabel] = grads_rel
            grads = grads[keep]
            if k_add:
                grads = np.vstack([grads, grads_add])
            self._per_sample_grads = grads
        if factors is not None:
            phi_new, w_new = phi_old, w_old
            if relabel.size:
                phi_new, w_new = phi_new.copy(), w_new.copy()
                phi_new[relabel] = phi_rel
                w_new[relabel] = w_rel
            phi_new, w_new = phi_new[keep], w_new[keep]
            if k_add:
                phi_new = np.vstack([phi_new, phi_add])
                w_new = np.concatenate([w_new, w_add])
            self._factors = (phi_new, w_new, l2_ridge)
        if new_hessian is not None:
            self._hessian = new_hessian
        X_new = self.X_train[keep] if remove.size else self.X_train
        y_new = y_patched[keep] if remove.size else y_patched
        if k_add:
            X_new = np.vstack([X_new, X_add])
            y_new = np.concatenate([y_new, y_add])
        self.X_train = X_new
        self.y_train = y_new
        self.num_train = n_new
        self._auto_learning_rate = None
        # Extent keys refer to pre-edit row indices and the cached rows to
        # pre-edit gradients; both restart empty.  The update-search state
        # holds the pre-edit Hessian/η and is re-derived lazily.
        self._grad_sum_cache.clear()
        self._param_change_cache.clear()
        self._update_state = None
        self.version += 1
        self.stats.inc("edits")

    def auto_learning_rate(self) -> float:
        """η = 1/λ_max(H), the shared one-step surrogate step size."""
        if self._auto_learning_rate is None:
            with self._lock:
                if self._auto_learning_rate is None:
                    from repro.influence.one_step_gd import auto_learning_rate

                    trace.add("cache_misses")
                    self._auto_learning_rate = auto_learning_rate(self.hessian)
                    self.stats.inc("learning_rate_builds")
                else:
                    trace.add("cache_hits")
        else:
            trace.add("cache_hits")
        return self._auto_learning_rate

    # ------------------------------------------------------------------
    @property
    def extent_caching(self) -> bool:
        """Whether the extent → gradient-sum / Δθ caches are live."""
        return self._extent_caching

    def enable_extent_caching(self) -> "ModelArtifacts":
        """Switch on the cross-query extent caches.

        Candidate masks are metric-independent, so within one audit the
        same extent is re-summed (``g_S = M @ grads``) and re-solved once
        per metric.  With caching on, each distinct extent pays its GEMM
        and solve exactly once and later metrics serve the cached rows.
        Off by default: a bare estimator built without a session keeps
        per-call accounting (its ``exact_batch_stats`` routing counters
        reflect executed work), and single-query workloads skip the keying
        overhead.  :class:`repro.core.AuditSession` enables it at ``fit``.
        """
        self._extent_caching = True
        return self

    def _extent_keys(self, masks: np.ndarray) -> list[bytes]:
        """Packed-row bytes per mask row — the extent identity used as key.

        Matches the miner's packed layout (``np.packbits`` along rows with
        zero padding), so dense lattice batches and packed mining chunks
        of the same extent key identically.
        """
        packed = np.packbits(np.asarray(masks, dtype=bool), axis=1)
        return [row.tobytes() for row in packed]

    def gradient_sums(self, masks: np.ndarray) -> np.ndarray:
        """``g_S = M @ grads`` rows, served from the extent cache when on.

        This is the one GEMM every gradient-sum-based estimator (first
        order, Neumann series, one-step GD) opens a query with.  The GEMM
        span and its FLOPs are recorded only for rows actually computed —
        a cache hit must not re-attribute work to the query's CostReport.
        """
        mask_f = np.asarray(masks).astype(np.float64)
        grads = self.per_sample_grads
        m, n = mask_f.shape
        p = grads.shape[1]
        if not self._extent_caching:
            with trace.span("influence.gemm", m=m, n=n, p=p) as s:
                s.add("gemm_flops", 2.0 * m * n * p)
                return mask_f @ grads
        keys = self._extent_keys(masks)
        with self._lock:
            cache = self._grad_sum_cache
            compute_rows: list[int] = []
            novel: set[bytes] = set()
            for i, key in enumerate(keys):
                if key not in cache and key not in novel:
                    novel.add(key)
                    compute_rows.append(i)
            hits = m - len(compute_rows)
            self.stats.inc("gradient_sum_cache_hits", hits)
            self.stats.inc("gradient_sum_cache_misses", len(compute_rows))
            trace.add("cache_hits", hits)
            trace.add("cache_misses", len(compute_rows))
            if compute_rows:
                block = mask_f if len(compute_rows) == m else mask_f[np.asarray(compute_rows)]
                k = block.shape[0]
                with trace.span("influence.gemm", m=k, n=n, p=p) as s:
                    s.add("gemm_flops", 2.0 * k * n * p)
                    computed = block @ grads
                for j, i in enumerate(compute_rows):
                    cache[keys[i]] = computed[j].copy()
                if hits == 0 and len(compute_rows) == m:
                    return computed
            out = np.empty((m, p), dtype=np.float64)
            for i, key in enumerate(keys):
                out[i] = cache[key]
            return out

    def cached_param_changes(self, spec: tuple, masks: np.ndarray, compute) -> np.ndarray:
        """Per-row Δθ for removal extents, computing only novel extents.

        ``spec`` identifies the estimator family and its numeric knobs
        (variant, damping, learning rate) — everything Δθ depends on
        besides the extent.  ``compute`` is the estimator's uncached batch
        kernel; it runs only on the first occurrence of each extent, so one
        audit pays each distinct extent's GEMMs and solves exactly once
        regardless of how many metrics re-enumerate it.  Returned rows are
        freshly assembled (cached rows are private copies), so callers may
        mutate the result.
        """
        m = np.asarray(masks).shape[0]
        if not self._extent_caching or m == 0:
            return compute(masks)
        keys = [(spec, key) for key in self._extent_keys(masks)]
        with self._lock:
            cache = self._param_change_cache
            compute_rows: list[int] = []
            novel: set[tuple] = set()
            for i, key in enumerate(keys):
                if key not in cache and key not in novel:
                    novel.add(key)
                    compute_rows.append(i)
            hits = m - len(compute_rows)
            self.stats.inc("param_change_cache_hits", hits)
            self.stats.inc("param_change_cache_misses", len(compute_rows))
            trace.add("cache_hits", hits)
            trace.add("cache_misses", len(compute_rows))
            if len(compute_rows) == m:
                computed = compute(masks)
                for j, i in enumerate(compute_rows):
                    cache[keys[i]] = computed[j].copy()
                return computed
            if compute_rows:
                rows = np.asarray(compute_rows)
                computed = compute(np.asarray(masks)[rows])
                for j, i in enumerate(compute_rows):
                    cache[keys[i]] = computed[j].copy()
            first = cache[keys[0]]
            out = np.empty((m, first.shape[0]), dtype=np.float64)
            for i, key in enumerate(keys):
                out[i] = cache[key]
            return out

    def update_search_state(self) -> tuple[np.ndarray, float]:
        """The metric-independent half of the §5 update-search context.

        ``(hessian, learning_rate)`` — with the per-sample training
        gradients reachable via :attr:`per_sample_grads` — is everything
        :class:`repro.updates.projected_gd.UpdateSearchContext` needs that
        does not depend on the metric; only ∇F and the original bias stay
        per-view.  Built once per bundle under the ``update.context`` span
        so a profiled audit shows exactly one build however many explainer
        views call ``explain_updates``.
        """
        if self._update_state is None:
            with self._lock:
                if self._update_state is None:
                    trace.add("cache_misses")
                    with trace.span("update.context", n=self.num_train):
                        self._update_state = (self.hessian, self.auto_learning_rate())
                    self.stats.inc("update_context_builds")
                else:
                    trace.add("cache_hits")
        else:
            trace.add("cache_hits")
        return self._update_state

    # ------------------------------------------------------------------
    def warm(
        self,
        damping: float = 0.0,
        exact: bool = False,
        learning_rate: bool = False,
    ) -> "ModelArtifacts":
        """Eagerly build every cache a read-only serving path would touch.

        After ``warm()`` the query methods (``solver``, ``per_sample_grads``,
        ``exact_rotation`` for the warmed damping, …) are pure reads: the
        frozen/concurrent read path never triggers a lazy build.  ``exact``
        additionally builds the eigendecomposition and rotated curvature
        caches of the Woodbury-batched exact path (skipped automatically
        when the model exposes no usable factors); ``learning_rate`` builds
        the shared one-step η.  Idempotent — every build is counted by its
        own stats entry exactly once.
        """
        _ = self.per_sample_grads
        _ = self.hessian
        solver = self.solver(damping)
        factors = self.hessian_factors()
        if exact:
            _ = solver.eigendecomposition()
            if factors is not None and factors[1].min() >= 0.0:
                _ = self.exact_rotation(damping)
        if learning_rate:
            _ = self.auto_learning_rate()
        return self
