"""One-step gradient-descent influence (paper Eq. 13, §4.1.2).

Starting from the fitted optimum (where the full-data gradient vanishes),
one gradient step on the reduced objective moves the parameters by

    Δθ = (η/n) g_S,

i.e. the FO direction without the inverse-Hessian rescaling.  The paper uses
this surrogate where influence functions do not apply — chiefly the
update-based explanations of Section 5 — and evaluates the resulting bias
change at the stepped parameters directly (``evaluation="hard"``), not
through the chain rule.

``learning_rate="auto"`` picks η = 1 / λ_max(H), the largest step size that
plain gradient descent tolerates on this loss; anything larger makes the
single step overshoot in high-curvature directions and produces wild bias
estimates.
"""

from __future__ import annotations

import numpy as np

from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.influence.artifacts import ModelArtifacts
from repro.influence.estimators import InfluenceEstimator
from repro.influence.hessian import largest_eigenvalue
from repro.models.base import TwiceDifferentiableClassifier


def auto_learning_rate(hessian: np.ndarray) -> float:
    """The shared "auto" step size η = 1/λ_max(H) of the one-step surrogate.

    Both the §4 removal estimator below and the §5 update search
    (:mod:`repro.updates.projected_gd`) take a single gradient step scaled
    this way; routing every caller through this helper is what guarantees
    the two surrogates can never disagree on η for the same Hessian.
    """
    lam_max = largest_eigenvalue(hessian)
    if lam_max <= 0:
        raise ValueError("hessian must have a positive top eigenvalue")
    return 1.0 / lam_max


class OneStepGradientDescent(InfluenceEstimator):
    """Eq. 13: Δθ from a single gradient step after removing the subset."""

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metric: FairnessMetric,
        test_ctx: FairnessContext,
        learning_rate: float | str = "auto",
        evaluation: str = "hard",
        artifacts: ModelArtifacts | None = None,
    ) -> None:
        super().__init__(model, X_train, y_train, metric, test_ctx, evaluation, artifacts)
        if learning_rate == "auto":
            self.learning_rate = self.artifacts.auto_learning_rate()
        else:
            rate = float(learning_rate)  # type: ignore[arg-type]
            if rate <= 0:
                raise ValueError(f"learning_rate must be positive, got {rate}")
            self.learning_rate = rate

    def _extent_cache_spec(self) -> tuple:
        return ("one_step_gd", self.learning_rate)

    def param_change(self, indices: np.ndarray) -> np.ndarray:
        indices = self._subset_size_ok(indices)
        g_s = self.per_sample_grads[indices].sum(axis=0)
        return (self.learning_rate / self.num_train) * g_s

    def _param_change_from_masks(self, masks: np.ndarray) -> np.ndarray:
        # Every subset's step is a scaled gradient sum: one GEMM total.
        grad_sums = self.artifacts.gradient_sums(masks)
        return (self.learning_rate / self.num_train) * grad_sums

    def _param_changes_indices(self, idxs: list[np.ndarray]) -> np.ndarray:
        if not idxs:
            return np.zeros((0, self.model.num_params))
        grads = self.per_sample_grads
        grad_sums = np.stack([grads[idx].sum(axis=0) for idx in idxs])
        return (self.learning_rate / self.num_train) * grad_sums
