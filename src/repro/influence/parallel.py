"""Process-parallel retraining shared by ``RetrainInfluence`` and the §5 verify path.

Ground-truth verification refits one model clone per subset — embarrassingly
parallel work that the rest of the influence stack cannot batch because
retraining has no closed form.  This module owns the one retrain loop both
callers share:

* :class:`RetrainTask` describes a single counterfactual training set —
  either *remove* the rows at ``indices`` (the §4 intervention) or *replace*
  them with new feature rows (the §5 update intervention);
* :func:`retrain_thetas` refits one warm-started clone per task, fanning the
  fits out over a process pool when more than one worker is requested.

The shared ``(model, X, y, warm_start)`` payload is shipped to each worker
*once* through the pool initializer; only the per-task index arrays (and
replacement rows) travel per task, so a batch of hundreds of subsets does
not serialize the training matrix hundreds of times.  When a pool cannot
be created (sandboxed environments without semaphores, unpicklable user
models) the helper degrades to the serial loop, so callers never have to
branch on platform.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from repro.models.base import TwiceDifferentiableClassifier


@dataclass(frozen=True)
class RetrainTask:
    """One counterfactual refit.

    ``replacement=None`` removes the rows at ``indices`` from the training
    set (the removal intervention); otherwise the rows are replaced by the
    ``replacement`` block, which must have one row per index (the update
    intervention of §5).
    """

    indices: np.ndarray
    replacement: np.ndarray | None = None

    def __post_init__(self) -> None:
        indices = np.asarray(self.indices, dtype=np.int64)
        object.__setattr__(self, "indices", indices)
        if self.replacement is not None:
            replacement = np.asarray(self.replacement, dtype=np.float64)
            if len(replacement) != indices.size:
                raise ValueError(
                    f"replacement has {len(replacement)} rows for {indices.size} indices"
                )
            object.__setattr__(self, "replacement", replacement)


def modified_training_set(
    X: np.ndarray, y: np.ndarray, task: RetrainTask
) -> tuple[np.ndarray, np.ndarray]:
    """The counterfactual (X, y) a task describes, with the scalar-path guards."""
    if task.replacement is None:
        keep = np.setdiff1d(np.arange(len(X)), task.indices)
        if keep.size == 0:
            raise ValueError("cannot remove the entire training set")
        y_keep = y[keep]
        if len(np.unique(y_keep)) < 2:
            raise ValueError("removal leaves a single class; the model is degenerate")
        return X[keep], y_keep
    X_new = X.copy()
    X_new[task.indices] = task.replacement
    return X_new, y


def _fit_one(
    model: TwiceDifferentiableClassifier,
    X: np.ndarray,
    y: np.ndarray,
    task: RetrainTask,
    warm: np.ndarray | None,
) -> np.ndarray:
    X_new, y_new = modified_training_set(X, y, task)
    clone = model.clone()
    clone.fit(X_new, y_new, warm_start=None if warm is None else warm.copy())
    assert clone.theta is not None
    return clone.theta


# Per-worker shared state, installed once by the pool initializer so the
# (model, X, y, warm) payload is pickled per *worker*, not per task.
_WORKER_STATE: dict = {}


def _init_worker(model, X, y, warm) -> None:
    _WORKER_STATE["shared"] = (model, X, y, warm)


def _fit_in_worker(task: RetrainTask) -> np.ndarray:
    model, X, y, warm = _WORKER_STATE["shared"]
    return _fit_one(model, X, y, task, warm)


def resolve_jobs(n_jobs: int | None, num_tasks: int) -> int:
    """Worker count: ``None`` means one per CPU, always capped by the task count."""
    if n_jobs is None:
        n_jobs = os.cpu_count() or 1
    n_jobs = int(n_jobs)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be None or >= 1, got {n_jobs}")
    return max(1, min(n_jobs, num_tasks))


def retrain_thetas(
    model: TwiceDifferentiableClassifier,
    X_train: np.ndarray,
    y_train: np.ndarray,
    tasks: list[RetrainTask],
    *,
    warm_start: np.ndarray | None = None,
    n_jobs: int | None = None,
) -> np.ndarray:
    """Refit one clone per task and return the (m, p) stack of fitted θ's.

    Fits run in a process pool of :func:`resolve_jobs` workers; task-level
    errors (degenerate removals) propagate unchanged, while pool
    *infrastructure* failures fall back to the serial loop.
    """
    X = np.asarray(X_train, dtype=np.float64)
    y = np.asarray(y_train)
    if not tasks:
        return np.zeros((0, model.num_params))
    warm = None if warm_start is None else np.array(warm_start, dtype=np.float64)
    jobs = resolve_jobs(n_jobs, len(tasks))
    if jobs > 1:
        try:
            with ProcessPoolExecutor(
                max_workers=jobs, initializer=_init_worker, initargs=(model, X, y, warm)
            ) as pool:
                return np.stack(list(pool.map(_fit_in_worker, tasks)))
        except (OSError, BrokenProcessPool, pickle.PicklingError, TypeError, AttributeError):
            # No pool available here (sandboxed semaphores) or the payload
            # would not pickle (spawn platforms raise TypeError/AttributeError
            # for e.g. lock-holding user models) — the serial loop gives
            # identical results.  A genuine task error re-raises from the
            # serial pass below, so nothing is masked.
            pass
    return np.stack([_fit_one(model, X, y, task, warm) for task in tasks])
