"""Ground-truth influence by retraining (the brute-force baseline).

This is the quantity every other estimator approximates: remove the subset,
refit with the same learning algorithm, and measure the new bias on the test
set.  Following the paper's setup (§6.3), retraining warm-starts from the
original parameters to speed convergence — which is also why its runtime in
Figure 4 sits close to one-step gradient descent rather than a cold fit.
"""

from __future__ import annotations

import numpy as np

from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.influence.artifacts import ModelArtifacts
from repro.influence.estimators import InfluenceEstimator
from repro.influence.parallel import RetrainTask, retrain_thetas
from repro.models.base import TwiceDifferentiableClassifier


class RetrainInfluence(InfluenceEstimator):
    """Exact Δθ and ΔF via refitting on the reduced training data.

    ``n_jobs`` controls the batch queries: each subset's refit is
    independent, so ``param_change_batch`` and friends fan the fits out over
    a process pool (``None`` = one worker per CPU, ``1`` = the serial loop).
    Scalar queries always refit in-process.
    """

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metric: FairnessMetric,
        test_ctx: FairnessContext,
        warm_start: bool = True,
        evaluation: str = "hard",
        n_jobs: int | None = 1,
        artifacts: ModelArtifacts | None = None,
    ) -> None:
        if evaluation == "linear":
            raise ValueError("retraining computes exact parameters; use 'hard' or 'smooth'")
        super().__init__(model, X_train, y_train, metric, test_ctx, evaluation, artifacts)
        self.warm_start = bool(warm_start)
        self.n_jobs = n_jobs

    def retrained_theta(self, indices: np.ndarray) -> np.ndarray:
        """Fit a clone on D ∖ S and return its parameters."""
        indices = self._subset_size_ok(indices)
        keep = np.setdiff1d(np.arange(self.num_train), indices)
        if keep.size == 0:
            raise ValueError("cannot remove the entire training set")
        y_keep = self.y_train[keep]
        if len(np.unique(y_keep)) < 2:
            raise ValueError("removal leaves a single class; the model is degenerate")
        clone = self.model.clone()
        start = self.theta.copy() if self.warm_start else None
        clone.fit(self.X_train[keep], y_keep, warm_start=start)
        assert clone.theta is not None
        return clone.theta

    def param_change(self, indices: np.ndarray) -> np.ndarray:
        return self.retrained_theta(indices) - self.theta

    def _param_change_from_masks(self, masks: np.ndarray) -> np.ndarray:
        # One refit per subset, run through the shared (optionally
        # process-parallel) retrain helper — identical fits to the scalar
        # path, just dispatched together.
        if masks.shape[0] == 0:
            return np.zeros((0, self.model.num_params))
        tasks = [RetrainTask(np.flatnonzero(row)) for row in masks]
        warm = self.theta.copy() if self.warm_start else None
        thetas = retrain_thetas(
            self.model, self.X_train, self.y_train, tasks,
            warm_start=warm, n_jobs=self.n_jobs,
        )
        return thetas - self.theta[None, :]
