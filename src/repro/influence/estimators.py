"""The estimator interface and shared per-model caches.

Every estimator answers the same two questions about removing a training
subset S (given as row indices into the training matrix):

* ``param_change(S)``  — estimated Δθ = θ_{D∖S} − θ*;
* ``bias_change(S)``   — estimated ΔF = F(θ_{D∖S}) − F(θ*) on the test set;

plus ``responsibility(S)`` implementing Definition 3.2.  Constructing an
estimator performs the paper's "start-up" pre-computation (per-sample
gradients, the Hessian and its factorization, ∇_θF), after which per-subset
queries are cheap — the cost model Figure 5 measures.

Evaluation modes
----------------
How Δθ is turned into ΔF is itself a modelling choice, so each estimator
takes an ``evaluation`` argument:

* ``"linear"`` — ΔF = ∇_θF(θ*)ᵀ Δθ, the chain rule of paper Eq. 11 using the
  smooth surrogate gradient.
* ``"smooth"`` — ΔF = F̃(θ* + Δθ) − F̃(θ*) with the smooth surrogate F̃;
  captures the metric's curvature without indicator noise.
* ``"hard"``   — ΔF = F(θ* + Δθ) − F(θ*) with the thresholded metric, the
  quantity retraining ground truth reports.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.models.base import TwiceDifferentiableClassifier

_EVALUATIONS = ("linear", "smooth", "hard")


class InfluenceEstimator(ABC):
    """Base class binding a fitted model, training data, and a bias metric."""

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metric: FairnessMetric,
        test_ctx: FairnessContext,
        evaluation: str = "linear",
    ) -> None:
        if model.theta is None:
            raise ValueError("model must be fitted before building an influence estimator")
        if evaluation not in _EVALUATIONS:
            raise ValueError(f"evaluation must be one of {_EVALUATIONS}, got {evaluation!r}")
        self.model = model
        self.X_train = np.asarray(X_train, dtype=np.float64)
        self.y_train = np.asarray(y_train)
        self.metric = metric
        self.test_ctx = test_ctx
        self.evaluation = evaluation
        self.theta = np.asarray(model.theta, dtype=np.float64)
        self.num_train = len(self.X_train)
        self.original_bias = metric.value(model, test_ctx)
        self.original_surrogate = metric.surrogate(model, test_ctx)
        self._grad_f: np.ndarray | None = None
        self._per_sample_grads: np.ndarray | None = None

    # -- cached heavy pieces -------------------------------------------
    @property
    def grad_f(self) -> np.ndarray:
        """∇_θF(θ*) of the smooth surrogate (cached)."""
        if self._grad_f is None:
            self._grad_f = self.metric.grad_theta(self.model, self.test_ctx)
        return self._grad_f

    @property
    def per_sample_grads(self) -> np.ndarray:
        """∇_θℓ(z_i, θ*) for all training rows, shape (n, p) (cached)."""
        if self._per_sample_grads is None:
            self._per_sample_grads = self.model.per_sample_grads(self.X_train, self.y_train)
        return self._per_sample_grads

    def subset_grad_sum(self, indices: np.ndarray) -> np.ndarray:
        """g_S = Σ_{i∈S} ∇ℓ(z_i, θ*)."""
        indices = self._check_indices(indices)
        return self.per_sample_grads[indices].sum(axis=0)

    # -- the estimator contract -----------------------------------------
    @abstractmethod
    def param_change(self, indices: np.ndarray) -> np.ndarray:
        """Estimated Δθ from removing the rows at ``indices``."""

    def bias_change(self, indices: np.ndarray) -> float:
        """Estimated ΔF = F(after removal) − F(before)."""
        delta = self.param_change(indices)
        if self.evaluation == "linear":
            return float(self.grad_f @ delta)
        theta_new = self.theta + delta
        if self.evaluation == "smooth":
            after = self.metric.surrogate(self.model, self.test_ctx, theta_new)
            return float(after - self.original_surrogate)
        after = self.metric.value(self.model, self.test_ctx, theta_new)
        return float(after - self.original_bias)

    def responsibility(self, indices: np.ndarray) -> float:
        """Causal responsibility R_F(S) of Definition 3.2 (estimated).

        The denominator matches the evaluation mode, so responsibility is
        the *relative* bias reduction under the same measuring stick.
        """
        baseline = (
            self.original_surrogate if self.evaluation == "smooth" else self.original_bias
        )
        if baseline == 0.0:
            raise ZeroDivisionError("original bias is zero; responsibility is undefined")
        return -self.bias_change(indices) / baseline

    # -- helpers ----------------------------------------------------------
    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if indices.shape != (self.num_train,):
                raise ValueError(
                    f"boolean mask length {indices.shape} != ({self.num_train},)"
                )
            indices = np.flatnonzero(indices)
        indices = indices.astype(np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_train):
            raise IndexError("subset indices out of range of the training data")
        return indices

    def _subset_size_ok(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        if indices.size >= self.num_train:
            raise ValueError("cannot remove the entire training set")
        return indices


def make_estimator(
    name: str,
    model: TwiceDifferentiableClassifier,
    X_train: np.ndarray,
    y_train: np.ndarray,
    metric: FairnessMetric,
    test_ctx: FairnessContext,
    **kwargs: object,
) -> InfluenceEstimator:
    """Factory over the four estimator families.

    ``name`` is one of ``"first_order"``, ``"second_order"``,
    ``"one_step_gd"``, ``"retrain"``; extra keyword arguments are forwarded
    to the estimator constructor.
    """
    from repro.influence.first_order import FirstOrderInfluence
    from repro.influence.one_step_gd import OneStepGradientDescent
    from repro.influence.retrain import RetrainInfluence
    from repro.influence.second_order import SecondOrderInfluence

    registry = {
        "first_order": FirstOrderInfluence,
        "second_order": SecondOrderInfluence,
        "one_step_gd": OneStepGradientDescent,
        "retrain": RetrainInfluence,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(f"unknown estimator {name!r}; available: {sorted(registry)}") from None
    return cls(model, X_train, y_train, metric, test_ctx, **kwargs)  # type: ignore[arg-type]
