"""The estimator interface and shared per-model caches.

Every estimator answers the same questions about removing a training subset
S (given as row indices or a boolean row mask over the training matrix):

* ``param_change(S)``  — estimated Δθ = θ_{D∖S} − θ*;
* ``bias_change(S)``   — estimated ΔF = F(θ_{D∖S}) − F(θ*) on the test set;

plus ``responsibility(S)`` implementing Definition 3.2, and a *batched*
form of each — ``param_change_batch`` / ``bias_change_batch`` /
``responsibility_batch`` — that evaluates m subsets per call.

Cost model
----------
Construction performs the paper's "start-up" pre-computation once: the
per-sample gradient matrix (n, p), the Hessian and its Cholesky
factorization, and ∇_θF.  That is the fixed cost Figure 5 measures.  The
metric-independent part of it — everything except ∇_θF and the original
bias — lives in a :class:`repro.influence.artifacts.ModelArtifacts`
bundle; by default each estimator builds a private bundle, and passing a
shared one (``make_estimator(..., artifacts=...)``) lets estimators of
*different* metrics, protected groups, and second-order variants reuse
one gradient matrix, one Hessian factorization, and one set of rotated
curvature caches — the per-model vs per-query split
:class:`repro.core.AuditSession` amortizes across a whole audit.  After
start-up the two query paths differ:

* **per-subset** — each call pays one gather-and-sum over the subset rows
  plus one triangular solve; issuing thousands of such calls from Python
  (one per lattice candidate) is dominated by interpreter and dispatch
  overhead, not floating-point work.
* **per-batch** — a batch of m subsets is one (m, n) mask matrix.  Subset
  gradient sums for the whole batch are a single ``M @ per_sample_grads``
  GEMM, the Δθ's come from one multi-RHS solve against the cached
  factorization, and all three evaluation modes score the m perturbed θ's
  in one vectorized pass.  Per-batch cost is therefore one BLAS level-3
  call amortized over m subsets — the amortized batch influence queries the
  lattice search (``repro.patterns.lattice``) is built on.  The exact
  second-order variant is the one closed form whose per-subset matrix
  differs across the batch (``n·H − m·H_S``); its batch path solves each
  subset as a rank-|S| Woodbury downdate of the cached eigendecomposition
  — one shifted multi-RHS solve plus an |S|×|S| capacitance system per
  subset, block-batched — instead of a fresh O(p³) refactorization,
  falling back to the per-subset dense path only when |S| ≥ p or the
  downdate is detected ill-conditioned (see
  ``repro.influence.second_order``).

Batches are given either as an (m, n) boolean mask matrix (rows = subsets)
or as a sequence of per-subset index arrays; results are aligned with the
batch order.  The base-class batch methods fall back to looping over the
scalar queries so estimators without a closed form (retraining) keep the
same interface; the closed-form estimators override them with the GEMM
formulation, and the equivalence test suite pins batch == loop to 1e-10.

Packed batches
--------------
The batch entry points additionally accept *packed* subsets: an
(m, ceil(n/8)) ``np.uint8`` matrix of bit-packed row masks together with
the keyword ``num_rows=n``.  Packed rows are unpacked ``_PACKED_CHUNK``
subsets at a time and fed through the boolean-mask machinery chunk by
chunk, so peak boolean-mask memory is O(_PACKED_CHUNK · n) regardless of
m — this is the streaming path the closed-pattern mining engine
(``repro.mining``) relies on to never materialize a full (m, n) bool
matrix.  Handing the miner's buffers over as giant unpacked bool matrices
is deprecated in favour of this path; results are bit-identical because
each chunk runs the exact same mask pipeline.

With ``num_rows`` the batch entry points also accept an *index-streamed*
batch: a plain sequence of per-subset sorted index arrays (the miner's
compressed sparse tidlists).  Each subset then costs O(|S|) to gather —
never O(n) to unpack — so a batch of small extents over a 10M-row table
touches only the rows it names.  The gradient-sum estimators override the
``_param_changes_indices`` hook with a stacked gather-sum; the base class
loops the scalar closed form.  The index path bypasses the shared
per-extent Δθ cache (its keys are packed-byte extents; packing each
subset just to key a cache would reintroduce the O(n/8) per-subset cost
this path exists to avoid) — deduplication is the caller's job, which the
mining cache already performs by extent digest.

Evaluation modes
----------------
How Δθ is turned into ΔF is itself a modelling choice, so each estimator
takes an ``evaluation`` argument:

* ``"linear"`` — ΔF = ∇_θF(θ*)ᵀ Δθ, the chain rule of paper Eq. 11 using the
  smooth surrogate gradient.
* ``"smooth"`` — ΔF = F̃(θ* + Δθ) − F̃(θ*) with the smooth surrogate F̃;
  captures the metric's curvature without indicator noise.
* ``"hard"``   — ΔF = F(θ* + Δθ) − F(θ*) with the thresholded metric, the
  quantity retraining ground truth reports.

Batched evaluation is ``deltas @ ∇F`` for ``"linear"`` and a single
``value_batch`` / ``surrogate_batch`` metric call over the stacked
``θ* + Δθ`` matrix for the other two.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.fairness.metrics import FairnessContext, FairnessMetric
from repro.influence.artifacts import ModelArtifacts
from repro.models.base import TwiceDifferentiableClassifier
from repro.obs import trace

_EVALUATIONS = ("linear", "smooth", "hard")

# Packed batches unpack at most this many boolean masks at a time, bounding
# peak mask memory at _PACKED_CHUNK · n bytes however large the batch is.
_PACKED_CHUNK = 256


class InfluenceEstimator(ABC):
    """Base class binding a fitted model, training data, and a bias metric."""

    def __init__(
        self,
        model: TwiceDifferentiableClassifier,
        X_train: np.ndarray,
        y_train: np.ndarray,
        metric: FairnessMetric,
        test_ctx: FairnessContext,
        evaluation: str = "linear",
        artifacts: ModelArtifacts | None = None,
    ) -> None:
        if model.theta is None:
            raise ValueError("model must be fitted before building an influence estimator")
        if evaluation not in _EVALUATIONS:
            raise ValueError(f"evaluation must be one of {_EVALUATIONS}, got {evaluation!r}")
        if artifacts is None:
            artifacts = ModelArtifacts(model, X_train, y_train)
        else:
            artifacts.check_compatible(model, X_train, y_train)
        self.artifacts = artifacts
        self.model = model
        self.X_train = artifacts.X_train
        self.y_train = artifacts.y_train
        self.metric = metric
        self.test_ctx = test_ctx
        self.evaluation = evaluation
        self.theta = artifacts.theta
        self.num_train = artifacts.num_train
        self._artifacts_version = artifacts.version
        self.original_bias = metric.value(model, test_ctx)
        self.original_surrogate = metric.surrogate(model, test_ctx)
        self._grad_f: np.ndarray | None = None

    # -- cached heavy pieces -------------------------------------------
    @property
    def grad_f(self) -> np.ndarray:
        """∇_θF(θ*) of the smooth surrogate (cached)."""
        if self._grad_f is None:
            trace.add("cache_misses")
            with trace.span("influence.grad_f", metric=self.metric.name):
                self._grad_f = self.metric.grad_theta(self.model, self.test_ctx)
        else:
            trace.add("cache_hits")
        return self._grad_f

    def warm(self) -> "InfluenceEstimator":
        """Eagerly build every cache the query methods would build lazily.

        After ``warm()`` the batch query surface is a pure read of this
        estimator's state: no ``self`` attribute is assigned on any
        subsequent query, so one estimator instance can serve concurrent
        readers (and frozen-array sanitizer runs) without a lazy build
        racing mid-query.  Subclasses extend this with their own memos.
        Idempotent and cheap to re-call.
        """
        _ = self.grad_f
        _ = self.per_sample_grads
        return self

    @property
    def per_sample_grads(self) -> np.ndarray:
        """∇_θℓ(z_i, θ*) for all training rows, shape (n, p) (cached).

        Served from the (possibly shared) :class:`ModelArtifacts` bundle,
        so estimators riding one bundle build the matrix once between them.
        """
        return self.artifacts.per_sample_grads

    def subset_grad_sum(self, indices: np.ndarray) -> np.ndarray:
        """g_S = Σ_{i∈S} ∇ℓ(z_i, θ*)."""
        indices = self._check_indices(indices)
        return self.per_sample_grads[indices].sum(axis=0)

    # -- the estimator contract -----------------------------------------
    @abstractmethod
    def param_change(self, indices: np.ndarray) -> np.ndarray:
        """Estimated Δθ from removing the rows at ``indices``."""

    def bias_change(self, indices: np.ndarray) -> float:
        """Estimated ΔF = F(after removal) − F(before)."""
        delta = self.param_change(indices)
        if self.evaluation == "linear":
            return float(self.grad_f @ delta)
        theta_new = self.theta + delta
        if self.evaluation == "smooth":
            after = self.metric.surrogate(self.model, self.test_ctx, theta_new)
            return float(after - self.original_surrogate)
        after = self.metric.value(self.model, self.test_ctx, theta_new)
        return float(after - self.original_bias)

    def responsibility(self, indices: np.ndarray) -> float:
        """Causal responsibility R_F(S) of Definition 3.2 (estimated).

        The denominator matches the evaluation mode, so responsibility is
        the *relative* bias reduction under the same measuring stick.
        """
        baseline = (
            self.original_surrogate if self.evaluation == "smooth" else self.original_bias
        )
        if baseline == 0.0:
            raise ZeroDivisionError("original bias is zero; responsibility is undefined")
        return -self.bias_change(indices) / baseline

    # -- the batched estimator contract -----------------------------------
    def param_change_batch(self, subsets, num_rows: int | None = None) -> np.ndarray:
        """Estimated Δθ for every subset in the batch — shape (m, p).

        ``subsets`` is an (m, n) boolean mask matrix, a sequence of index
        arrays, or — with ``num_rows`` — either an (m, ceil(n/8)) uint8
        matrix of bit-packed masks (unpacked chunk by chunk) or an
        index-streamed sequence of per-subset index arrays (gathered, never
        unpacked).
        """
        packed = self._check_packed(subsets, num_rows)
        if packed is not None:
            chunks = [
                self._param_changes(self._check_batch(masks))
                for masks in self._iter_packed_chunks(packed)
            ]
            if not chunks:
                return np.zeros((0, self.model.num_params))
            return np.concatenate(chunks, axis=0)
        if num_rows is not None:
            return self._param_changes_indices(self._check_index_batch(subsets))
        return self._param_changes(self._check_batch(subsets))

    def _extent_cache_spec(self) -> tuple | None:
        """Key identifying everything Δθ depends on besides the extent.

        Closed-form estimators return ``(family, *numeric knobs)`` so their
        per-row Δθ's can be cached on the shared artifacts by extent and
        reused across the metrics of one audit.  ``None`` (the base —
        retraining has no closed form worth caching) opts out.
        """
        return None

    def _param_changes(self, masks: np.ndarray) -> np.ndarray:
        """Δθ's for a validated mask batch, via the shared extent cache.

        When the artifacts bundle has extent caching enabled (audit
        sessions turn it on) and the estimator declares a cache spec, rows
        are served per-extent from the bundle and
        :meth:`_param_change_from_masks` runs only on novel extents; the
        bare-estimator path is a plain passthrough.
        """
        spec = self._extent_cache_spec()
        if spec is None or not self.artifacts.extent_caching:
            return self._param_change_from_masks(masks)
        return self.artifacts.cached_param_changes(
            spec, masks, self._param_change_from_masks
        )

    def _param_change_from_masks(self, masks: np.ndarray) -> np.ndarray:
        """Δθ's for a pre-validated (m, n) mask matrix.

        This base implementation loops over :meth:`param_change` (correct
        for any estimator, including retraining); closed-form estimators
        override it with a single GEMM + multi-RHS solve.  Overriding this
        hook rather than the public method keeps batch validation in one
        place, paid once per query.
        """
        if masks.shape[0] == 0:
            return np.zeros((0, self.model.num_params))
        return np.stack([self.param_change(np.flatnonzero(row)) for row in masks])

    def _param_changes_indices(self, idxs: list[np.ndarray]) -> np.ndarray:
        """Δθ's for a validated index-streamed batch — no (m, n) masks.

        The base implementation loops the scalar closed form (correct for
        any estimator, including retraining); gradient-sum estimators
        override it with a stacked gather-sum so a batch of small subsets
        costs O(Σ|S|·p), independent of the training-set size.
        """
        if not idxs:
            return np.zeros((0, self.model.num_params))
        return np.stack([self.param_change(idx) for idx in idxs])

    def bias_change_batch(self, subsets, num_rows: int | None = None) -> np.ndarray:
        """Estimated ΔF for every subset in the batch — shape (m,).

        The Δθ's come from the :meth:`param_change` batch hook; the
        evaluation mode is applied to all m perturbed parameter vectors in
        one vectorized pass (see the module docstring).  Packed uint8
        batches (with ``num_rows``) stream through in bounded-memory
        chunks; index-streamed batches (sequences of index arrays with
        ``num_rows``) gather only the rows they name.
        """
        packed = self._check_packed(subsets, num_rows)
        if packed is not None:
            with trace.span(
                "influence.batch_packed",
                estimator=type(self).__name__,
                m=int(packed.shape[0]),
            ):
                return self._packed_bias_change(packed)
        if num_rows is not None:
            return self._indices_bias_change(self._check_index_batch(subsets))
        masks = self._check_batch(subsets)
        if masks.shape[0] == 0:
            return np.zeros(0)
        with trace.span(
            "influence.batch",
            estimator=type(self).__name__,
            m=int(masks.shape[0]),
            n=self.num_train,
        ) as s:
            s.add("evaluations", int(masks.shape[0]))
            deltas = self._param_changes(masks)
            return self._apply_evaluation(deltas)

    def _apply_evaluation(self, deltas: np.ndarray) -> np.ndarray:
        """Fold an (m, p) Δθ matrix into (m,) ΔF's under the evaluation mode."""
        if self.evaluation == "linear":
            return deltas @ self.grad_f
        thetas = self.theta[None, :] + deltas
        with trace.span("influence.evaluate", mode=self.evaluation, m=int(deltas.shape[0])):
            if self.evaluation == "smooth":
                after = self.metric.surrogate_batch(self.model, self.test_ctx, thetas)
                return after - self.original_surrogate
            after = self.metric.value_batch(self.model, self.test_ctx, thetas)
            return after - self.original_bias

    def _indices_bias_change(self, idxs: list[np.ndarray]) -> np.ndarray:
        """ΔF over a validated index-streamed batch, shape (m,)."""
        if not idxs:
            return np.zeros(0)
        with trace.span(
            "influence.batch_indices",
            estimator=type(self).__name__,
            m=len(idxs),
            n=self.num_train,
        ) as s:
            s.add("evaluations", len(idxs))
            return self._apply_evaluation(self._param_changes_indices(idxs))

    def responsibility_batch(self, subsets, num_rows: int | None = None) -> np.ndarray:
        """Causal responsibility R_F(S) for every subset — shape (m,)."""
        baseline = (
            self.original_surrogate if self.evaluation == "smooth" else self.original_bias
        )
        if baseline == 0.0:
            raise ZeroDivisionError("original bias is zero; responsibility is undefined")
        return -self.bias_change_batch(subsets, num_rows=num_rows) / baseline

    # -- helpers ----------------------------------------------------------
    def _check_fresh(self) -> None:
        """Raise if the shared artifacts were edited after this estimator.

        ``ModelArtifacts.apply_edit`` bumps the bundle's version; an
        estimator built before the edit still holds pre-edit references
        (training matrix shape, cached solvers, the original bias of the
        old data) and would silently score subsets of the wrong dataset.
        Query entry points call this before touching any cache.
        """
        if self._artifacts_version != self.artifacts.version:
            raise RuntimeError(
                "the shared ModelArtifacts were edited after this estimator was "
                "built (version "
                f"{self._artifacts_version} vs {self.artifacts.version}); "
                "construct a new estimator against the edited artifacts"
            )

    def _check_packed(self, subsets, num_rows: int | None) -> np.ndarray | None:
        """Validate a packed uint8 batch; None when ``subsets`` is not one.

        ``num_rows`` is the contract marker for the streamed representations
        — without it a 2-D uint8 array is rejected by :meth:`_check_batch`
        (reading 0/1 bytes as bit-packs would silently score the wrong
        subsets), and with it the batch must be either a packed matrix over
        the training rows (validated and returned here) or an
        index-streamed sequence of per-subset index arrays (None is
        returned and the callers dispatch to the index hooks).
        """
        self._check_fresh()
        if num_rows is None:
            return None
        if num_rows != self.num_train:
            raise ValueError(
                f"packed batches cover {num_rows} rows, expected {self.num_train}"
            )
        if self._is_index_batch(subsets):
            return None
        packed = np.asarray(subsets)
        if packed.ndim != 2 or packed.dtype != np.uint8:
            raise ValueError(
                "num_rows implies a packed batch: an (m, ceil(n/8)) uint8 matrix "
                f"of bit-packed masks, got {packed.dtype} array of shape {packed.shape}"
            )
        width = (num_rows + 7) // 8  # np.packbits layout, as in repro.mining.bitset
        if packed.shape[1] != width:
            raise ValueError(
                f"packed mask matrix has {packed.shape[1]} byte columns, expected "
                f"{width} for {num_rows} rows"
            )
        return packed

    @staticmethod
    def _is_index_batch(subsets) -> bool:
        """True for an index-streamed batch: a sequence of 1-D index arrays.

        Disambiguated from packed batches by element dtype — packed rows
        are uint8, index arrays any other integer dtype (the miner emits
        int32/int64 per :func:`repro.mining.bitset.sparse_index_dtype`).
        An empty sequence is not claimed, so it keeps the historical
        packed-batch error rather than silently scoring nothing.
        """
        if isinstance(subsets, np.ndarray):
            return subsets.ndim == 1 and subsets.dtype == object and subsets.size > 0
        if not isinstance(subsets, (list, tuple)) or not subsets:
            return False
        for subset in subsets:
            arr = np.asarray(subset)
            if arr.ndim != 1 or arr.dtype.kind not in "iu" or arr.dtype == np.uint8:
                return False
        return True

    def _check_index_batch(self, subsets) -> list[np.ndarray]:
        """Validate an index-streamed batch subset by subset.

        Each subset gets the full scalar-path checks (range, duplicates,
        the entire-training-set guard) without ever scattering into an
        (m, n) mask matrix.
        """
        return [self._subset_size_ok(subset) for subset in subsets]

    def _iter_packed_chunks(self, packed: np.ndarray):
        """Unpack a packed batch ``_PACKED_CHUNK`` subsets at a time."""
        for start in range(0, packed.shape[0], _PACKED_CHUNK):
            chunk = packed[start : start + _PACKED_CHUNK]
            yield np.unpackbits(chunk, axis=1, count=self.num_train).astype(bool)

    def _packed_bias_change(self, packed: np.ndarray) -> np.ndarray:
        """Chunked ΔF over a packed batch via the public boolean-mask path,
        so subclass overrides (e.g. first-order linear) apply per chunk."""
        chunks = [self.bias_change_batch(masks) for masks in self._iter_packed_chunks(packed)]
        return np.concatenate(chunks) if chunks else np.zeros(0)

    def _check_batch(self, subsets) -> np.ndarray:
        """Normalize a batch to an (m, n) boolean mask matrix.

        Accepts either the mask matrix itself or any sequence of per-subset
        index arrays / boolean masks (everything :meth:`_check_indices`
        accepts).  A 2-D *non-boolean* array is rejected outright: silently
        reading a 0/1 integer matrix as per-row index lists would return
        influence for the wrong subsets.  Mirrors the scalar guard against
        removing the entire training set, row by row.
        """
        self._check_fresh()
        if isinstance(subsets, np.ndarray) and subsets.ndim == 1 and subsets.dtype != object:
            # A bare index array iterates element-wise into m *singleton*
            # subsets — almost certainly not what a caller migrating from
            # the scalar API meant.  (Object arrays hold per-subset index
            # arrays and iterate correctly.)
            raise ValueError(
                "a batch is a sequence of subsets; wrap a single subset's index "
                "array in a list (e.g. bias_change_batch([indices]))"
            )
        if isinstance(subsets, np.ndarray) and subsets.ndim == 2:
            if subsets.dtype != bool:
                raise ValueError(
                    "2-D subset batches must be boolean mask matrices; pass index "
                    "arrays as a sequence (e.g. a list of 1-D arrays) instead"
                )
            if subsets.shape[1] != self.num_train:
                raise ValueError(
                    f"mask matrix has {subsets.shape[1]} columns, expected {self.num_train}"
                )
            masks = subsets
        else:
            rows = []
            for subset in subsets:
                if np.asarray(subset).ndim == 0:
                    # A flat sequence of ints would be split into singleton
                    # subsets — same hazard as the bare-array case above.
                    raise ValueError(
                        "a batch is a sequence of subsets; wrap a single subset's "
                        "index array in a list (e.g. bias_change_batch([indices]))"
                    )
                rows.append(self._check_indices(subset))
            masks = np.zeros((len(rows), self.num_train), dtype=bool)
            for j, idx in enumerate(rows):
                masks[j, idx] = True
        if masks.shape[0] and bool(masks.all(axis=1).any()):
            raise ValueError("cannot remove the entire training set")
        return masks

    def _check_indices(self, indices: np.ndarray) -> np.ndarray:
        self._check_fresh()
        indices = np.asarray(indices)
        if indices.dtype == bool:
            if indices.shape != (self.num_train,):
                raise ValueError(
                    f"boolean mask length {indices.shape} != ({self.num_train},)"
                )
            indices = np.flatnonzero(indices)
        indices = indices.astype(np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_train):
            raise IndexError("subset indices out of range of the training data")
        if indices.size > 1:
            # A subset is a set: a duplicated index would double-count its
            # gradient in the scalar sum but collapse to one row in the
            # batched mask representation, silently breaking batch == loop.
            # Strictly increasing arrays (the miner's sparse tidlists) are
            # duplicate-free by construction — one diff pass instead of a
            # sort per subset.
            if not bool((np.diff(indices) > 0).all()):
                if np.unique(indices).size != indices.size:
                    raise ValueError("subset indices contain duplicates")
        return indices

    def _subset_size_ok(self, indices: np.ndarray) -> np.ndarray:
        indices = self._check_indices(indices)
        if indices.size >= self.num_train:
            raise ValueError("cannot remove the entire training set")
        return indices


def make_estimator(
    name: str,
    model: TwiceDifferentiableClassifier,
    X_train: np.ndarray,
    y_train: np.ndarray,
    metric: FairnessMetric,
    test_ctx: FairnessContext,
    **kwargs: object,
) -> InfluenceEstimator:
    """Factory over the four estimator families.

    ``name`` is one of ``"first_order"``, ``"second_order"``,
    ``"one_step_gd"``, ``"retrain"``; extra keyword arguments are forwarded
    to the estimator constructor.  ``"exact"`` and ``"series"`` are
    accepted as aliases for the two second-order variants — both are batch
    fast paths now, so naming the variant directly is a first-class way to
    pick the search estimator (a conflicting explicit ``variant`` kwarg is
    rejected).

    Pass ``artifacts=ModelArtifacts(model, X_train, y_train)`` to share the
    metric-independent start-up caches (per-sample gradients, Hessian
    factorization, rotated curvature rows) across many estimators of the
    same fitted model — the amortization a multi-metric, multi-group audit
    lives on.  Omitted, each estimator builds a private bundle.
    """
    from repro.influence.first_order import FirstOrderInfluence
    from repro.influence.one_step_gd import OneStepGradientDescent
    from repro.influence.retrain import RetrainInfluence
    from repro.influence.second_order import SecondOrderInfluence

    if name in ("exact", "series"):
        if kwargs.get("variant", name) != name:
            raise ValueError(
                f"estimator {name!r} already fixes variant={name!r}; "
                f"got conflicting variant={kwargs['variant']!r}"
            )
        kwargs = {**kwargs, "variant": name}
        name = "second_order"
    registry = {
        "first_order": FirstOrderInfluence,
        "second_order": SecondOrderInfluence,
        "one_step_gd": OneStepGradientDescent,
        "retrain": RetrainInfluence,
    }
    try:
        cls = registry[name]
    except KeyError:
        available = sorted([*registry, "exact", "series"])
        raise ValueError(f"unknown estimator {name!r}; available: {available}") from None
    return cls(model, X_train, y_train, metric, test_ctx, **kwargs)  # type: ignore[arg-type]
