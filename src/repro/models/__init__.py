"""Twice-differentiable classifiers implemented from scratch on numpy.

Influence functions (paper §4.1) need exact access to per-sample gradients
and Hessians of the training loss at the fitted optimum.  PyTorch and
scikit-learn are not available in this environment, so the three model
families the paper evaluates — logistic regression, a linear SVM with a
(squared-)hinge loss, and a one-hidden-layer feed-forward network — are
implemented here with analytic derivatives, which tests validate against
finite differences.
"""

from repro.models.base import TwiceDifferentiableClassifier
from repro.models.logistic_regression import LogisticRegression
from repro.models.neural_network import NeuralNetwork
from repro.models.optim import gradient_descent, minimize_loss
from repro.models.svm import LinearSVM

__all__ = [
    "LinearSVM",
    "LogisticRegression",
    "NeuralNetwork",
    "TwiceDifferentiableClassifier",
    "gradient_descent",
    "minimize_loss",
]
