"""Optimizers used to fit the models.

``minimize_loss`` wraps scipy's L-BFGS-B (the production path: fast,
deterministic, no learning-rate tuning).  ``gradient_descent`` is a plain
full-batch loop kept for the one-step-GD influence surrogate and for tests
that need to observe individual descent steps.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy import optimize


def minimize_loss(
    loss: Callable[[np.ndarray], float],
    grad: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    max_iter: int = 500,
    tol: float = 1e-10,
) -> np.ndarray:
    """Minimize a smooth loss with L-BFGS-B; returns the optimal parameters.

    A tight gradient tolerance matters here: influence functions assume the
    fitted parameters are a stationary point (∇L(θ*) ≈ 0), and a sloppy fit
    shows up directly as estimation error in Figure 3.
    """
    result = optimize.minimize(
        loss,
        np.asarray(x0, dtype=np.float64),
        jac=grad,
        method="L-BFGS-B",
        options={"maxiter": max_iter, "gtol": tol, "ftol": 1e-14},
    )
    return np.asarray(result.x, dtype=np.float64)


def gradient_descent(
    grad: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    learning_rate: float = 0.1,
    num_steps: int = 100,
) -> np.ndarray:
    """Plain full-batch gradient descent: ``θ ← θ − η ∇L(θ)``."""
    if learning_rate <= 0:
        raise ValueError(f"learning_rate must be positive, got {learning_rate}")
    if num_steps < 0:
        raise ValueError(f"num_steps must be non-negative, got {num_steps}")
    theta = np.asarray(x0, dtype=np.float64).copy()
    for _ in range(num_steps):
        theta -= learning_rate * grad(theta)
    return theta
