"""The model interface every influence estimator programs against.

The contract mirrors what the paper's derivations need:

* the empirical risk is ``L(θ) = (1/n) Σ_i ℓ(z_i, θ)`` where the per-sample
  loss *includes* the L2 term ``(λ/2)‖θ‖²`` — folding the regularizer into
  each sample keeps the objective form identical when points are removed,
  which is the intervention Gopher studies;
* ``per_sample_grads`` returns the ``∇_θ ℓ(z_i, θ)`` matrix used to form
  subset gradients ``g_S``;
* ``hessian(X, y)`` returns the *mean* Hessian over the given rows, so the
  same method provides both the full-data ``H`` and the subset ``H_S`` of the
  second-order group influence (Eq. 10);
* ``grad_proba`` returns ``∇_θ P(ŷ=1 | x)`` so smooth fairness surrogates can
  chain-rule onto parameters (Eq. 11).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.utils.validation import check_2d, check_binary_labels, check_same_length


class TwiceDifferentiableClassifier(ABC):
    """Base class for binary classifiers with analytic first/second derivatives."""

    l2_reg: float
    theta: np.ndarray | None

    # ------------------------------------------------------------------
    # Fitting and prediction
    # ------------------------------------------------------------------
    @abstractmethod
    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        warm_start: np.ndarray | None = None,
    ) -> "TwiceDifferentiableClassifier":
        """Minimize the empirical risk on (X, y); sets ``self.theta``."""

    @abstractmethod
    def predict_proba(self, X: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        """Return P(y = 1 | x) for each row of X."""

    def predict(self, X: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        """Return hard 0/1 predictions (threshold 0.5)."""
        return (self.predict_proba(X, theta) >= 0.5).astype(np.int64)

    def predict_proba_many(self, X: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        """P(y = 1 | x) under a *stack* of parameter vectors — shape (n, m).

        ``thetas`` is an (m, p) matrix of parameter vectors; column ``j`` of
        the result equals ``predict_proba(X, thetas[j])``.  The base
        implementation loops over the stack; linear models override it with
        a single matrix product so batched influence queries stay at BLAS
        speed.
        """
        thetas = self._check_theta_stack(thetas)
        X = np.asarray(X, dtype=np.float64)
        if thetas.shape[0] == 0:
            return np.zeros((len(X), 0))
        return np.stack([self.predict_proba(X, t) for t in thetas], axis=1)

    def predict_many(self, X: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        """Hard 0/1 predictions under a stack of parameter vectors — (n, m)."""
        return (self.predict_proba_many(X, thetas) >= 0.5).astype(np.int64)

    def accuracy(self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None) -> float:
        """Fraction of rows predicted correctly."""
        y = check_binary_labels(y)
        return float(np.mean(self.predict(X, theta) == y))

    # ------------------------------------------------------------------
    # Derivatives (per-sample loss includes the L2 term)
    # ------------------------------------------------------------------
    @abstractmethod
    def per_sample_losses(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        """ℓ(z_i, θ) for every row — shape (n,)."""

    @abstractmethod
    def per_sample_grads(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        """∇_θ ℓ(z_i, θ) for every row — shape (n, p)."""

    @abstractmethod
    def hessian(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        """Mean Hessian (1/n) Σ ∇²_θ ℓ(z_i, θ) — shape (p, p)."""

    def hessian_factors(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Rank-one decomposition ``(phi, weights, ridge)`` of the Hessian.

        When a model's per-sample Hessian has the generalized-linear form
        ``∇²ℓ(z_i, θ) = w_i φ_i φ_iᵀ + ridge·I`` it should return the
        curvature features ``phi`` (n, p), the per-sample weights ``w``
        (n,) and the shared ridge, so that for any row subset S

            hessian(X[S], y[S], θ) == (1/|S|) Σ_{i∈S} w_i φ_i φ_iᵀ + ridge·I.

        Batched second-order influence uses this to form subset
        Hessian-vector products for *many* subsets as three matrix products
        instead of materializing one (p, p) Hessian per subset.  Models
        without this structure (e.g. finite-difference Hessians) leave the
        default, which signals callers to fall back to ``hessian``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose rank-one Hessian factors"
        )

    def input_grads(
        self,
        X: np.ndarray,
        y: np.ndarray,
        vector: np.ndarray,
        theta: np.ndarray | None = None,
    ) -> np.ndarray:
        """∇_x of the scalar ``vᵀ ∇_θ ℓ(z_i, θ)`` for every row — shape (n, d).

        The §5 update search ascends J(δ) = ∇_θF(θ*)ᵀ Σ_{z∈S} ∇_θℓ(z+δ, θ*)
        over the input coordinates; a model implementing this hook gives the
        search an analytic ∇_δJ (one call per ascent step, ``vector`` =
        ∇_θF) instead of 2·|active| stacked finite-difference objective
        evaluations.  ``vector`` has length ``num_params``; the result is a
        gradient with respect to the *input* features, shape
        (n, num input features).  Models without a closed form leave this
        default, which signals the search to fall back to central finite
        differences.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose analytic input gradients"
        )

    @abstractmethod
    def grad_proba(self, X: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        """∇_θ P(ŷ=1 | x_i) for every row — shape (n, p)."""

    @property
    @abstractmethod
    def num_params(self) -> int:
        """Dimension p of the parameter vector."""

    @property
    def num_features(self) -> int | None:
        """Input feature dimension the model is bound to (None before fit).

        All built-in models record the width of the matrix they were
        fitted on; pipeline code uses this to reject a pre-fitted model
        whose feature dimension does not match a fresh encoding *before*
        the mismatch surfaces as a confusing shape error deep inside an
        influence query.
        """
        return getattr(self, "_num_features", None)

    @abstractmethod
    def clone(self) -> "TwiceDifferentiableClassifier":
        """A fresh unfitted copy with identical hyper-parameters."""

    # ------------------------------------------------------------------
    # Derived quantities shared by all models
    # ------------------------------------------------------------------
    def loss(self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None) -> float:
        """Mean loss over the given rows."""
        return float(np.mean(self.per_sample_losses(X, y, theta)))

    def grad(self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        """Mean gradient over the given rows — shape (p,)."""
        return self.per_sample_grads(X, y, theta).mean(axis=0)

    def subset_grad_sum(
        self,
        X: np.ndarray,
        y: np.ndarray,
        indices: np.ndarray,
        theta: np.ndarray | None = None,
    ) -> np.ndarray:
        """g_S = Σ_{i∈S} ∇ℓ(z_i, θ) for a subset of rows."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.zeros(self.num_params)
        return self.per_sample_grads(X[indices], y[indices], theta).sum(axis=0)

    # ------------------------------------------------------------------
    # Shared validation / parameter plumbing
    # ------------------------------------------------------------------
    def _check_theta_stack(self, thetas: np.ndarray) -> np.ndarray:
        thetas = np.asarray(thetas, dtype=np.float64)
        if thetas.ndim != 2 or thetas.shape[1] != self.num_params:
            raise ValueError(
                f"thetas must have shape (m, {self.num_params}), got {thetas.shape}"
            )
        return thetas

    def _resolve_theta(self, theta: np.ndarray | None) -> np.ndarray:
        if theta is not None:
            arr = np.asarray(theta, dtype=np.float64)
            if arr.shape != (self.num_params,):
                raise ValueError(f"theta shape {arr.shape} != ({self.num_params},)")
            return arr
        if self.theta is None:
            raise RuntimeError(f"{type(self).__name__} is not fitted yet")
        return self.theta

    @staticmethod
    def _check_xy(X: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = check_2d(np.asarray(X, dtype=np.float64), "X")
        y = check_binary_labels(np.asarray(y), "y")
        check_same_length(X, y, ("X", "y"))
        return X, y
