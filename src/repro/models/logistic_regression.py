"""L2-regularized logistic regression with closed-form derivatives.

This is the paper's default model.  With λ > 0 the empirical risk is strictly
convex, so the Hessian is positive definite and invertible — exactly the
regime in which influence functions are best behaved (§4.1.1).
"""

from __future__ import annotations

import numpy as np

from repro.models.base import TwiceDifferentiableClassifier
from repro.models.optim import minimize_loss


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z, dtype=np.float64)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(TwiceDifferentiableClassifier):
    """Binary logistic regression: p(x) = σ(θᵀ[x, 1]).

    Parameters
    ----------
    l2_reg:
        Strength λ of the L2 term folded into each per-sample loss.
    fit_intercept:
        Whether to append a constant-1 feature (default True).
    max_iter:
        L-BFGS iteration cap.
    """

    def __init__(self, l2_reg: float = 1e-3, fit_intercept: bool = True, max_iter: int = 500):
        if l2_reg < 0:
            raise ValueError(f"l2_reg must be non-negative, got {l2_reg}")
        self.l2_reg = float(l2_reg)
        self.fit_intercept = bool(fit_intercept)
        self.max_iter = int(max_iter)
        self.theta: np.ndarray | None = None
        self._num_features: int | None = None

    # ------------------------------------------------------------------
    def clone(self) -> "LogisticRegression":
        return LogisticRegression(self.l2_reg, self.fit_intercept, self.max_iter)

    @property
    def num_params(self) -> int:
        if self._num_features is None:
            raise RuntimeError("model has no feature dimension yet; call fit() first")
        return self._num_features + (1 if self.fit_intercept else 0)

    def _augment(self, X: np.ndarray) -> np.ndarray:
        if self._num_features is None:
            self._num_features = X.shape[1]
        elif X.shape[1] != self._num_features:
            raise ValueError(f"X has {X.shape[1]} features, expected {self._num_features}")
        if self.fit_intercept:
            return np.hstack([X, np.ones((len(X), 1))])
        return X

    # ------------------------------------------------------------------
    def fit(
        self, X: np.ndarray, y: np.ndarray, warm_start: np.ndarray | None = None
    ) -> "LogisticRegression":
        X, y = self._check_xy(X, y)
        self._num_features = X.shape[1]
        x0 = warm_start if warm_start is not None else np.zeros(self.num_params)
        self.theta = minimize_loss(
            lambda t: self.loss(X, y, t),
            lambda t: self.grad(X, y, t),
            x0,
            max_iter=self.max_iter,
        )
        return self

    def predict_proba(self, X: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        Xa = self._augment(X)
        return _sigmoid(Xa @ self._resolve_theta(theta))

    def predict_proba_many(self, X: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        thetas = self._check_theta_stack(thetas)
        Xa = self._augment(np.asarray(X, dtype=np.float64))
        return _sigmoid(Xa @ thetas.T)

    # ------------------------------------------------------------------
    def per_sample_losses(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        z = self._augment(X) @ th
        # log(1 + e^-z) for y=1 and log(1 + e^z) for y=0, computed stably.
        softplus = np.logaddexp(0.0, z)
        nll = softplus - y * z
        return nll + 0.5 * self.l2_reg * float(th @ th)

    def per_sample_grads(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        Xa = self._augment(X)
        residual = _sigmoid(Xa @ th) - y
        return residual[:, None] * Xa + self.l2_reg * th[None, :]

    def hessian(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        Xa = self._augment(X)
        p = _sigmoid(Xa @ th)
        weights = p * (1.0 - p)
        hess = (Xa * weights[:, None]).T @ Xa / len(Xa)
        hess += self.l2_reg * np.eye(self.num_params)
        return hess

    def hessian_factors(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, float]:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        Xa = self._augment(X)
        p = _sigmoid(Xa @ th)
        return Xa, p * (1.0 - p), self.l2_reg

    def input_grads(
        self,
        X: np.ndarray,
        y: np.ndarray,
        vector: np.ndarray,
        theta: np.ndarray | None = None,
    ) -> np.ndarray:
        # vᵀ∇_θℓ(z, θ) = (σ(θᵀx̃) − y)(vᵀx̃) + λ vᵀθ, so per input coordinate
        #   ∇_x = σ'(θᵀx̃)(vᵀx̃) θ_x + (σ(θᵀx̃) − y) v_x
        # with θ_x, v_x the non-intercept slices (the L2 term is constant in x).
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.num_params,):
            raise ValueError(f"vector shape {vector.shape} != ({self.num_params},)")
        Xa = self._augment(X)
        p = _sigmoid(Xa @ th)
        d = X.shape[1]
        curvature = p * (1.0 - p) * (Xa @ vector)
        return curvature[:, None] * th[None, :d] + (p - y)[:, None] * vector[None, :d]

    def grad_proba(self, X: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        th = self._resolve_theta(theta)
        Xa = self._augment(X)
        p = _sigmoid(Xa @ th)
        return (p * (1.0 - p))[:, None] * Xa
