"""Linear SVM with the squared-hinge loss.

The paper restricts itself to twice-differentiable losses.  The classic hinge
is not differentiable, so — as is standard when influence functions meet SVMs
— we use the *squared* hinge ``ℓ(m) = max(0, 1 − m)²`` with margin
``m = ỹ·θᵀ[x, 1]`` and ``ỹ ∈ {−1, +1}``.  It is C¹ everywhere, its Hessian
exists almost everywhere (the kink at m = 1 has measure zero), and the L2
term keeps the empirical Hessian positive definite.

``predict_proba`` maps the margin through a logistic link so fairness
surrogates get a differentiable score in [0, 1]; the hard prediction is the
usual sign of the decision value.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import TwiceDifferentiableClassifier
from repro.models.logistic_regression import _sigmoid
from repro.models.optim import minimize_loss


class LinearSVM(TwiceDifferentiableClassifier):
    """L2-regularized linear SVM with squared-hinge loss."""

    def __init__(self, l2_reg: float = 1e-2, fit_intercept: bool = True, max_iter: int = 500):
        if l2_reg < 0:
            raise ValueError(f"l2_reg must be non-negative, got {l2_reg}")
        self.l2_reg = float(l2_reg)
        self.fit_intercept = bool(fit_intercept)
        self.max_iter = int(max_iter)
        self.theta: np.ndarray | None = None
        self._num_features: int | None = None

    # ------------------------------------------------------------------
    def clone(self) -> "LinearSVM":
        return LinearSVM(self.l2_reg, self.fit_intercept, self.max_iter)

    @property
    def num_params(self) -> int:
        if self._num_features is None:
            raise RuntimeError("model has no feature dimension yet; call fit() first")
        return self._num_features + (1 if self.fit_intercept else 0)

    def _augment(self, X: np.ndarray) -> np.ndarray:
        if self._num_features is None:
            self._num_features = X.shape[1]
        elif X.shape[1] != self._num_features:
            raise ValueError(f"X has {X.shape[1]} features, expected {self._num_features}")
        if self.fit_intercept:
            return np.hstack([X, np.ones((len(X), 1))])
        return X

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray, warm_start: np.ndarray | None = None) -> "LinearSVM":
        X, y = self._check_xy(X, y)
        self._num_features = X.shape[1]
        x0 = warm_start if warm_start is not None else np.zeros(self.num_params)
        self.theta = minimize_loss(
            lambda t: self.loss(X, y, t),
            lambda t: self.grad(X, y, t),
            x0,
            max_iter=self.max_iter,
        )
        return self

    def decision_function(self, X: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        """Raw margin θᵀ[x, 1]."""
        X = np.asarray(X, dtype=np.float64)
        return self._augment(X) @ self._resolve_theta(theta)

    def predict_proba(self, X: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        return _sigmoid(self.decision_function(X, theta))

    def predict_proba_many(self, X: np.ndarray, thetas: np.ndarray) -> np.ndarray:
        thetas = self._check_theta_stack(thetas)
        Xa = self._augment(np.asarray(X, dtype=np.float64))
        return _sigmoid(Xa @ thetas.T)

    # ------------------------------------------------------------------
    def per_sample_losses(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        margins = (2.0 * y - 1.0) * (self._augment(X) @ th)
        slack = np.maximum(0.0, 1.0 - margins)
        return slack**2 + 0.5 * self.l2_reg * float(th @ th)

    def per_sample_grads(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        Xa = self._augment(X)
        signed = 2.0 * y - 1.0
        slack = np.maximum(0.0, 1.0 - signed * (Xa @ th))
        return (-2.0 * slack * signed)[:, None] * Xa + self.l2_reg * th[None, :]

    def hessian(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        Xa = self._augment(X)
        signed = 2.0 * y - 1.0
        active = (signed * (Xa @ th)) < 1.0
        weights = 2.0 * active.astype(np.float64)
        hess = (Xa * weights[:, None]).T @ Xa / len(Xa)
        hess += self.l2_reg * np.eye(self.num_params)
        return hess

    def hessian_factors(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, float]:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        Xa = self._augment(X)
        signed = 2.0 * y - 1.0
        active = (signed * (Xa @ th)) < 1.0
        return Xa, 2.0 * active.astype(np.float64), self.l2_reg

    def input_grads(
        self,
        X: np.ndarray,
        y: np.ndarray,
        vector: np.ndarray,
        theta: np.ndarray | None = None,
    ) -> np.ndarray:
        # vᵀ∇_θℓ(z, θ) = −2·max(0, 1 − m)·ỹ·(vᵀx̃) + λ vᵀθ with m = ỹ·θᵀx̃,
        # ỹ = 2y − 1.  Differentiating in x (the L2 term is constant, ỹ² = 1):
        #   ∇_x = 2·1[m < 1]·(vᵀx̃)·θ_x − 2·max(0, 1 − m)·ỹ·v_x
        # with θ_x, v_x the non-intercept slices.  The active-margin
        # indicator matches the subgradient convention of per_sample_grads
        # (zero exactly at the kink m = 1).
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.num_params,):
            raise ValueError(f"vector shape {vector.shape} != ({self.num_params},)")
        Xa = self._augment(X)
        signed = 2.0 * y - 1.0
        slack = np.maximum(0.0, 1.0 - signed * (Xa @ th))
        active = (slack > 0.0).astype(np.float64)
        d = X.shape[1]
        curvature = 2.0 * active * (Xa @ vector)
        return curvature[:, None] * th[None, :d] + (-2.0 * slack * signed)[:, None] * vector[None, :d]

    def grad_proba(self, X: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        th = self._resolve_theta(theta)
        Xa = self._augment(X)
        p = _sigmoid(Xa @ th)
        return (p * (1.0 - p))[:, None] * Xa
