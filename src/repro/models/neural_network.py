"""One-hidden-layer feed-forward network (the paper's third model family).

Architecture matches §6.2 of the paper: a single hidden layer (default 10
units, tanh) with a sigmoid output and cross-entropy loss, L2-regularized.
Gradients are analytic (vectorized backprop).  Two Hessian modes exist:

* ``"gauss_newton"`` (default) — the generalized Gauss-Newton matrix
  ``(1/n) Σ pᵢ(1−pᵢ) JᵢJᵢᵀ + λI`` with ``Jᵢ = ∇_θ zᵢ``.  Positive
  semi-definite by construction, fast, and the standard choice when influence
  functions are applied to networks (the true Hessian is indefinite away from
  interpolation).
* ``"exact_fd"`` — central finite differences of the analytic gradient; slow
  but exact, used in tests and available for small problems.

The paper itself observes (§6.4) that influence estimates degrade on neural
networks; reproducing that degradation is part of the Figure 3b experiment.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import TwiceDifferentiableClassifier
from repro.models.logistic_regression import _sigmoid
from repro.models.optim import minimize_loss
from repro.utils.rng import ensure_rng


class NeuralNetwork(TwiceDifferentiableClassifier):
    """Binary classifier: p(x) = σ(w₂ᵀ tanh(W₁x + b₁) + b₂)."""

    def __init__(
        self,
        hidden_units: int = 10,
        l2_reg: float = 1e-3,
        max_iter: int = 800,
        seed: int = 0,
        hessian_mode: str = "gauss_newton",
    ) -> None:
        if hidden_units < 1:
            raise ValueError(f"hidden_units must be >= 1, got {hidden_units}")
        if l2_reg < 0:
            raise ValueError(f"l2_reg must be non-negative, got {l2_reg}")
        if hessian_mode not in ("gauss_newton", "exact_fd"):
            raise ValueError(f"unknown hessian_mode {hessian_mode!r}")
        self.hidden_units = int(hidden_units)
        self.l2_reg = float(l2_reg)
        self.max_iter = int(max_iter)
        self.seed = int(seed)
        self.hessian_mode = hessian_mode
        self.theta: np.ndarray | None = None
        self._num_features: int | None = None

    # ------------------------------------------------------------------
    def clone(self) -> "NeuralNetwork":
        return NeuralNetwork(
            self.hidden_units, self.l2_reg, self.max_iter, self.seed, self.hessian_mode
        )

    @property
    def num_params(self) -> int:
        if self._num_features is None:
            raise RuntimeError("model has no feature dimension yet; call fit() first")
        d, h = self._num_features, self.hidden_units
        return h * d + h + h + 1

    def _check_features(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        if self._num_features is None:
            self._num_features = X.shape[1]
        elif X.shape[1] != self._num_features:
            raise ValueError(f"X has {X.shape[1]} features, expected {self._num_features}")
        return X

    def _unpack(self, theta: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        d, h = self._num_features, self.hidden_units
        w1 = theta[: h * d].reshape(h, d)
        b1 = theta[h * d : h * d + h]
        w2 = theta[h * d + h : h * d + 2 * h]
        b2 = float(theta[-1])
        return w1, b1, w2, b2

    def _init_theta(self, d: int) -> np.ndarray:
        rng = ensure_rng(self.seed)
        h = self.hidden_units
        w1 = rng.normal(0.0, 1.0 / np.sqrt(d), size=h * d)
        b1 = np.zeros(h)
        w2 = rng.normal(0.0, 1.0 / np.sqrt(h), size=h)
        return np.concatenate([w1, b1, w2, [0.0]])

    # ------------------------------------------------------------------
    def _forward(
        self, X: np.ndarray, theta: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return hidden activations a (n, h) and output logits z (n,)."""
        w1, b1, w2, b2 = self._unpack(theta)
        a = np.tanh(X @ w1.T + b1)
        z = a @ w2 + b2
        return a, z

    def fit(
        self, X: np.ndarray, y: np.ndarray, warm_start: np.ndarray | None = None
    ) -> "NeuralNetwork":
        X, y = self._check_xy(X, y)
        self._num_features = X.shape[1]
        x0 = warm_start if warm_start is not None else self._init_theta(X.shape[1])
        self.theta = minimize_loss(
            lambda t: self.loss(X, y, t),
            lambda t: self.grad(X, y, t),
            x0,
            max_iter=self.max_iter,
        )
        return self

    def predict_proba(self, X: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        X = self._check_features(X)
        _, z = self._forward(X, self._resolve_theta(theta))
        return _sigmoid(z)

    # ------------------------------------------------------------------
    def per_sample_losses(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        _, z = self._forward(X, th)
        nll = np.logaddexp(0.0, z) - y * z
        return nll + 0.5 * self.l2_reg * float(th @ th)

    def per_sample_grads(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        a, z = self._forward(X, th)
        dz = _sigmoid(z) - y
        grads = self._chain_from_dz(X, a, dz, th)
        return grads + self.l2_reg * th[None, :]

    def grad_proba(self, X: np.ndarray, theta: np.ndarray | None = None) -> np.ndarray:
        X = self._check_features(X)
        th = self._resolve_theta(theta)
        a, z = self._forward(X, th)
        p = _sigmoid(z)
        return (p * (1.0 - p))[:, None] * self._logit_jacobian(X, a, th)

    def input_grads(
        self,
        X: np.ndarray,
        y: np.ndarray,
        vector: np.ndarray,
        theta: np.ndarray | None = None,
    ) -> np.ndarray:
        # With dz = σ(z) − y and s = vᵀ∇_θz, the scalar is
        #   vᵀ∇_θℓ(z, θ) = dz·s + λ vᵀθ,
        # so ∇_x = σ'(z)·s·∇_x z + dz·∇_x s.  Writing a = tanh(W₁x + b₁),
        # t = 1 − a², u_h = v_{W₁}[h]·x + v_{b₁}[h]:
        #   s      = Σ_h w₂_h t_h u_h + v_{w₂}ᵀa + v_{b₂}
        #   ∇_x z  = (w₂ ⊙ t) W₁
        #   ∇_x s  = (t ⊙ w₂) v_{W₁} + (t ⊙ (v_{w₂} − 2 a ⊙ w₂ ⊙ u)) W₁
        # (the −2a term is the second tanh derivative appearing because s
        # already contains one backward pass).  All rows vectorize to four
        # (n, h) element-wise products and three GEMMs.
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.num_params,):
            raise ValueError(f"vector shape {vector.shape} != ({self.num_params},)")
        w1, _, w2, _ = self._unpack(th)
        d, h = self._num_features, self.hidden_units
        v_w1 = vector[: h * d].reshape(h, d)
        v_b1 = vector[h * d : h * d + h]
        v_w2 = vector[h * d + h : h * d + 2 * h]
        v_b2 = float(vector[-1])
        a, z = self._forward(X, th)
        t = 1.0 - a**2
        u = X @ v_w1.T + v_b1[None, :]
        s = (w2[None, :] * t * u).sum(axis=1) + a @ v_w2 + v_b2
        p = _sigmoid(z)
        dz = p - y
        grad_z_x = (w2[None, :] * t) @ w1
        grad_s_x = (t * w2[None, :]) @ v_w1 + (t * (v_w2[None, :] - 2.0 * a * w2[None, :] * u)) @ w1
        return (p * (1.0 - p) * s)[:, None] * grad_z_x + dz[:, None] * grad_s_x

    def hessian(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> np.ndarray:
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        if self.hessian_mode == "gauss_newton":
            a, z = self._forward(X, th)
            p = _sigmoid(z)
            weights = p * (1.0 - p)
            jac = self._logit_jacobian(X, a, th)
            hess = (jac * weights[:, None]).T @ jac / len(X)
            hess += self.l2_reg * np.eye(self.num_params)
            return hess
        return self._hessian_fd(X, y, th)

    def hessian_factors(
        self, X: np.ndarray, y: np.ndarray, theta: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, float]:
        if self.hessian_mode != "gauss_newton":
            # The finite-difference Hessian has no rank-one structure.
            return super().hessian_factors(X, y, theta)
        X, y = self._check_xy(X, y)
        th = self._resolve_theta(theta)
        a, z = self._forward(X, th)
        p = _sigmoid(z)
        return self._logit_jacobian(X, a, th), p * (1.0 - p), self.l2_reg

    # ------------------------------------------------------------------
    def _chain_from_dz(
        self, X: np.ndarray, a: np.ndarray, dz: np.ndarray, theta: np.ndarray
    ) -> np.ndarray:
        """Backprop dz (n,) into per-sample parameter gradients (n, p)."""
        _, _, w2, _ = self._unpack(theta)
        n, h = a.shape
        d = X.shape[1]
        dpre = (dz[:, None] * w2[None, :]) * (1.0 - a**2)  # (n, h)
        g_w1 = (dpre[:, :, None] * X[:, None, :]).reshape(n, h * d)
        g_b1 = dpre
        g_w2 = dz[:, None] * a
        g_b2 = dz[:, None]
        return np.hstack([g_w1, g_b1, g_w2, g_b2])

    def _logit_jacobian(self, X: np.ndarray, a: np.ndarray, theta: np.ndarray) -> np.ndarray:
        """J_i = ∇_θ z_i, shape (n, p) — the GGN building block."""
        return self._chain_from_dz(X, a, np.ones(len(X)), theta)

    def _hessian_fd(self, X: np.ndarray, y: np.ndarray, theta: np.ndarray) -> np.ndarray:
        eps = 1e-5
        p = self.num_params
        hess = np.empty((p, p))
        for k in range(p):
            step = np.zeros(p)
            step[k] = eps
            g_plus = self.grad(X, y, theta + step)
            g_minus = self.grad(X, y, theta - step)
            hess[:, k] = (g_plus - g_minus) / (2.0 * eps)
        return 0.5 * (hess + hess.T)
