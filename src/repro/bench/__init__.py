"""Benchmark harness shared by the scripts in ``benchmarks/``.

Each benchmark regenerates one table or figure of the paper's evaluation
(§6) and prints it in a paper-shaped ASCII form.  Output is written through
:func:`emit`, which bypasses pytest's capture so the tables land in the
console (and ``bench_output.txt``) even under ``pytest --benchmark-only``.
"""

from repro.bench.rendering import emit, render_series, render_table
from repro.bench.workloads import (
    MODELS,
    PipelineBundle,
    build_pipeline,
    coherent_subsets,
    subset_mask_matrix,
)

__all__ = [
    "MODELS",
    "PipelineBundle",
    "build_pipeline",
    "coherent_subsets",
    "emit",
    "render_series",
    "render_table",
    "subset_mask_matrix",
]
