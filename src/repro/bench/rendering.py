"""ASCII rendering for benchmark tables and figure series."""

from __future__ import annotations

import sys
from collections.abc import Sequence
from pathlib import Path

_RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def emit(text: str, filename: str | None = None) -> None:
    """Write ``text`` to the *real* stdout and optionally to a results file.

    pytest captures ``sys.stdout``; writing to ``sys.__stdout__`` keeps the
    paper-shaped tables visible when the benchmarks run under
    ``pytest benchmarks/ --benchmark-only`` (and in any ``tee`` of it).
    """
    stream = sys.__stdout__ or sys.stdout
    stream.write(text if text.endswith("\n") else text + "\n")
    stream.flush()
    if filename is not None:
        _RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        (_RESULTS_DIR / filename).write_text(text if text.endswith("\n") else text + "\n")


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """A fixed-width table with a title rule, like the paper's Tables 1-7."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[j])), *(len(row[j]) for row in cells)) if cells else len(str(headers[j]))
        for j in range(len(headers))
    ]
    lines = ["", f"=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if note:
        lines.append(f"note: {note}")
    return "\n".join(lines) + "\n"


def render_series(
    title: str,
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    value_format: str = "{:.6g}",
    note: str = "",
) -> str:
    """A figure rendered as one row per x value, one column per line series."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(x_values):
        row = [x]
        for name in series:
            row.append(value_format.format(series[name][i]))
        rows.append(row)
    return render_table(title, headers, rows, note=note)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
