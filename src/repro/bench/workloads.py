"""Workload builders shared by every benchmark.

A :class:`PipelineBundle` is one fully-prepared experimental setup: dataset
split, encoder, fitted model, fairness context, and metric — the state the
paper's §6.2 calls "the setup".  Benchmarks build bundles through
:func:`build_pipeline` so that dataset/model/metric combinations stay
consistent across tables and figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import (
    TabularEncoder,
    load_adult,
    load_german,
    load_sqf,
    load_synth_scale,
    train_test_split,
)
from repro.datasets.base import Dataset
from repro.fairness.metrics import FairnessContext, FairnessMetric, get_metric
from repro.models import LinearSVM, LogisticRegression, NeuralNetwork
from repro.models.base import TwiceDifferentiableClassifier
from repro.utils.rng import ensure_rng

DATASETS = {
    "german": load_german,
    "adult": load_adult,
    "sqf": load_sqf,
    "synth_scale": load_synth_scale,
}

MODELS = {
    "logistic_regression": lambda: LogisticRegression(l2_reg=1e-3),
    "svm": lambda: LinearSVM(l2_reg=1e-2),
    "neural_network": lambda: NeuralNetwork(hidden_units=10, l2_reg=1e-3, seed=0),
}


@dataclass
class PipelineBundle:
    """Everything one experiment needs, pre-fitted."""

    dataset_name: str
    model_name: str
    train: Dataset
    test: Dataset
    encoder: TabularEncoder
    X_train: np.ndarray
    model: TwiceDifferentiableClassifier
    metric: FairnessMetric
    test_ctx: FairnessContext

    @property
    def original_bias(self) -> float:
        return self.metric.value(self.model, self.test_ctx)


def build_pipeline(
    dataset: str = "german",
    model: str = "logistic_regression",
    metric: str = "statistical_parity",
    n_rows: int | None = None,
    seed: int = 1,
    split_seed: int = 1,
    test_fraction: float = 0.25,
) -> PipelineBundle:
    """Load a dataset, split, encode, fit the model, and wire the metric."""
    if dataset not in DATASETS:
        raise ValueError(f"unknown dataset {dataset!r}; available: {sorted(DATASETS)}")
    if model not in MODELS:
        raise ValueError(f"unknown model {model!r}; available: {sorted(MODELS)}")
    loader = DATASETS[dataset]
    data = loader(seed=seed) if n_rows is None else loader(n_rows, seed=seed)
    train, test = train_test_split(data, test_fraction, seed=split_seed)
    encoder = TabularEncoder().fit(train.table)
    X_train = encoder.transform(train.table)
    clf = MODELS[model]()
    clf.fit(X_train, train.labels)
    test_ctx = FairnessContext(
        X=encoder.transform(test.table),
        y=test.labels,
        privileged=test.privileged_mask(),
        favorable_label=train.favorable_label,
    )
    return PipelineBundle(
        dataset_name=dataset,
        model_name=model,
        train=train,
        test=test,
        encoder=encoder,
        X_train=X_train,
        model=clf,
        metric=get_metric(metric),
        test_ctx=test_ctx,
    )


def subset_mask_matrix(subsets: list[np.ndarray], num_rows: int) -> np.ndarray:
    """Stack per-subset index arrays or boolean row masks into the (m, n)
    boolean mask matrix the batched influence API consumes.

    Benchmarks pre-build this outside their timed sections so loop-vs-batch
    comparisons time the influence queries, not the mask plumbing.
    """
    masks = np.zeros((len(subsets), num_rows), dtype=bool)
    for j, subset in enumerate(subsets):
        arr = np.asarray(subset)
        if arr.dtype == bool:
            # A 0/1 mask must not be fancy-indexed as row numbers.
            if arr.shape != (num_rows,):
                raise ValueError(
                    f"boolean mask length {arr.shape} != ({num_rows},)"
                )
            masks[j] = arr
        else:
            idx = arr.astype(np.int64)
            if idx.size and (idx.min() < 0 or idx.max() >= num_rows):
                # Negative indices would wrap around and mark the wrong rows.
                raise IndexError(f"subset indices out of range [0, {num_rows})")
            masks[j, idx] = True
    return masks


def coherent_subsets(
    bundle: PipelineBundle,
    count: int,
    seed: int = 0,
    min_size: int = 20,
    max_fraction: float = 0.35,
) -> list[np.ndarray]:
    """Subsets for the Figure-3 experiment.

    Half are *coherent*: all rows matching a random predicate (a random
    categorical value, or a random numeric half-line), truncated into the
    size range — the kind of subset Gopher's patterns describe.  The other
    half are uniform random subsets of matching sizes, covering the
    uncorrelated regime.
    """
    rng = ensure_rng(seed)
    n = bundle.train.num_rows
    max_size = max(int(max_fraction * n), min_size + 1)
    table = bundle.train.table
    subsets: list[np.ndarray] = []
    attempts = 0
    while len(subsets) < count and attempts < count * 20:
        attempts += 1
        if len(subsets) % 2 == 0:
            name = str(rng.choice(table.column_names))
            column = table.column(name)
            if table.is_categorical(name):
                value = str(rng.choice(column.distinct()))
                mask = column.equals_mask(value)
            else:
                threshold = float(rng.choice(column.values))
                if rng.random() < 0.5:
                    mask = column.greater_equal_mask(threshold)
                else:
                    mask = column.less_mask(threshold)
            indices = np.flatnonzero(mask)
            if not min_size <= len(indices) <= max_size:
                continue
        else:
            size = int(rng.integers(min_size, max_size))
            indices = rng.choice(n, size=size, replace=False)
        subsets.append(np.sort(indices))
    return subsets
