"""Fairness metrics (hard) and their differentiable surrogates.

The paper's bias function F(θ, D_test) is a group-fairness violation measured
on held-out data, oriented so that F > 0 means the classifier is biased
*against the protected group*.  Influence-based responsibility needs ∇_θF,
which the hard (indicator-based) metrics do not have; the surrogates replace
indicators with predicted probabilities, the standard smoothing used by the
Gopher implementation.
"""

from repro.fairness.metrics import (
    AverageOdds,
    EqualOpportunity,
    FairnessContext,
    FairnessMetric,
    PredictiveParity,
    StatisticalParity,
    get_metric,
    list_metrics,
)
from repro.fairness.report import FairnessReport, fairness_report

__all__ = [
    "AverageOdds",
    "EqualOpportunity",
    "FairnessContext",
    "FairnessMetric",
    "FairnessReport",
    "PredictiveParity",
    "StatisticalParity",
    "fairness_report",
    "get_metric",
    "list_metrics",
]
