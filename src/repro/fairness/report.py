"""A one-call fairness report across all registered metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fairness.metrics import FairnessContext, get_metric, list_metrics
from repro.models.base import TwiceDifferentiableClassifier


@dataclass
class FairnessReport:
    """Accuracy plus every fairness metric for one fitted model."""

    accuracy: float
    metrics: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"accuracy               : {self.accuracy:8.4f}"]
        for name, value in sorted(self.metrics.items()):
            lines.append(f"{name:<23}: {value:8.4f}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def fairness_report(
    model: TwiceDifferentiableClassifier,
    ctx: FairnessContext,
    theta: np.ndarray | None = None,
) -> FairnessReport:
    """Evaluate accuracy and every registered metric on the context.

    Metrics that are undefined on this context (e.g. equal opportunity when a
    group has no favorable-label rows) are reported as ``nan`` rather than
    failing the whole report.
    """
    values: dict[str, float] = {}
    for name in list_metrics():
        try:
            values[name] = get_metric(name).value(model, ctx, theta)
        except ValueError:
            values[name] = float("nan")
    return FairnessReport(
        accuracy=model.accuracy(ctx.X, ctx.y, theta),
        metrics=values,
    )
