"""Group-fairness metrics and their smooth surrogates (paper §2).

All metrics are evaluated against a :class:`FairnessContext` — the encoded
test features, true labels, a privileged-group mask, and which label value is
the *favorable* outcome.  Values are oriented as

    F = rate(privileged) − rate(protected)

computed on the favorable outcome, so positive F means the privileged group
receives the favorable outcome more often: bias against the protected group.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import TwiceDifferentiableClassifier
from repro.utils.validation import check_2d, check_binary_labels

_EPS = 1e-9


def _stale_batch_reduction(metric: "FairnessMetric", scalar_name: str, batch_name: str) -> bool:
    """True when the vectorized batch reduction would bypass a subclass's
    scalar override.

    A batch reduction (e.g. ``_difference_batch``) is only trustworthy if it
    is defined at — or below — the class that defines the scalar hook it
    mirrors; a subclass overriding just the scalar hook must fall back to a
    per-column loop over it, or batch and scalar APIs silently diverge.
    """
    cls = type(metric)

    def definer(name: str) -> type:
        for klass in cls.__mro__:
            if name in klass.__dict__:
                return klass
        return FairnessMetric

    return not issubclass(definer(batch_name), definer(scalar_name))


@dataclass(frozen=True)
class FairnessContext:
    """The frozen test-side state a fairness metric is evaluated on.

    Attributes
    ----------
    X:
        Encoded test features, shape (n, d).
    y:
        True binary labels, shape (n,).
    privileged:
        Boolean mask: True where the row belongs to the privileged group.
    favorable_label:
        Which label value (0 or 1) is the favorable outcome; 0 for SQF.
    """

    X: np.ndarray
    y: np.ndarray
    privileged: np.ndarray
    favorable_label: int = 1

    def __post_init__(self) -> None:
        X = check_2d(self.X, "X")
        y = check_binary_labels(self.y, "y")
        priv = np.asarray(self.privileged, dtype=bool)
        if len(y) != len(X) or len(priv) != len(X):
            raise ValueError("X, y and privileged must share their first dimension")
        if self.favorable_label not in (0, 1):
            raise ValueError(f"favorable_label must be 0 or 1, got {self.favorable_label}")
        if priv.all() or not priv.any():
            raise ValueError("both privileged and protected groups must be non-empty")
        # copy=False: contexts are frozen, read-only views — an audit
        # session derives one context per protected group from a single
        # shared test encoding, and copying the matrix per group would
        # defeat exactly that sharing.
        object.__setattr__(self, "X", X.astype(np.float64, copy=False))
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "privileged", priv)

    @property
    def favorable_true(self) -> np.ndarray:
        """Mask of rows whose *true* label is the favorable outcome."""
        return self.y == self.favorable_label


class FairnessMetric:
    """Base class: hard value, smooth surrogate, and surrogate gradient."""

    name: str = "fairness"

    # -- hard (indicator-based) value -----------------------------------
    def value(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None = None,
    ) -> float:
        """F(θ, D_test) using thresholded predictions."""
        fav_pred = self._favorable_hard(model, ctx, theta)
        return self._difference(fav_pred.astype(np.float64), ctx)

    # -- smooth surrogate ------------------------------------------------
    def surrogate(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None = None,
    ) -> float:
        """F with indicators replaced by predicted probabilities."""
        return self._difference(self._favorable_proba(model, ctx, theta), ctx)

    def grad_theta(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None = None,
    ) -> np.ndarray:
        """∇_θ of the smooth surrogate — the ∇_θF of Eq. 11."""
        raise NotImplementedError

    # -- batched evaluation over a stack of parameter vectors -------------
    def value_batch(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        thetas: np.ndarray,
    ) -> np.ndarray:
        """``[value(model, ctx, θ) for θ in thetas]`` as one vectorized pass.

        ``thetas`` has shape (m, p); the result has shape (m,).  One call to
        ``predict_proba_many`` replaces m model evaluations, and the group
        difference is reduced along the batch axis — this is what lets the
        ``"hard"`` and ``"smooth"`` evaluation modes of the influence
        estimators score hundreds of perturbed parameter vectors per call.

        A subclass that customizes :meth:`value` without touching the batch
        path gets a loop over its own ``value`` — slower, but never a
        different number than the scalar API.
        """
        if type(self).value is not FairnessMetric.value:
            return np.array([self.value(model, ctx, theta) for theta in thetas])
        fav_pred = self._favorable_hard_many(model, ctx, thetas)
        return self._batch_difference(fav_pred.astype(np.float64), ctx)

    def surrogate_batch(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        thetas: np.ndarray,
    ) -> np.ndarray:
        """Smooth-surrogate counterpart of :meth:`value_batch` — shape (m,)."""
        if type(self).surrogate is not FairnessMetric.surrogate:
            return np.array([self.surrogate(model, ctx, theta) for theta in thetas])
        return self._batch_difference(self._favorable_proba_many(model, ctx, thetas), ctx)

    # -- shared helpers ---------------------------------------------------
    def _favorable_hard(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None,
    ) -> np.ndarray:
        return model.predict(ctx.X, theta) == ctx.favorable_label

    def _favorable_proba(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None,
    ) -> np.ndarray:
        proba = model.predict_proba(ctx.X, theta)
        return proba if ctx.favorable_label == 1 else 1.0 - proba

    def _favorable_grad(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None,
    ) -> np.ndarray:
        grad = model.grad_proba(ctx.X, theta)
        return grad if ctx.favorable_label == 1 else -grad

    def _favorable_hard_many(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        thetas: np.ndarray,
    ) -> np.ndarray:
        return model.predict_many(ctx.X, thetas) == ctx.favorable_label

    def _favorable_proba_many(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        thetas: np.ndarray,
    ) -> np.ndarray:
        proba = model.predict_proba_many(ctx.X, thetas)
        return proba if ctx.favorable_label == 1 else 1.0 - proba

    def _difference(self, scores: np.ndarray, ctx: FairnessContext) -> float:
        raise NotImplementedError

    def _difference_batch(self, scores: np.ndarray, ctx: FairnessContext) -> np.ndarray:
        """Group difference per column of an (n, m) score matrix.

        Subclasses override with an axis-0 reduction; this fallback keeps
        user-defined metrics working at per-column cost.
        """
        return np.array(
            [self._difference(scores[:, j], ctx) for j in range(scores.shape[1])]
        )

    def _batch_difference(self, scores: np.ndarray, ctx: FairnessContext) -> np.ndarray:
        """Use the vectorized reduction only when it is in sync with the
        scalar ``_difference`` (see :func:`_stale_batch_reduction`)."""
        if _stale_batch_reduction(self, "_difference", "_difference_batch"):
            return FairnessMetric._difference_batch(self, scores, ctx)
        return self._difference_batch(scores, ctx)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class StatisticalParity(FairnessMetric):
    """P(ŷ = fav | privileged) − P(ŷ = fav | protected)."""

    name = "statistical_parity"

    def _difference(self, scores: np.ndarray, ctx: FairnessContext) -> float:
        priv = ctx.privileged
        return float(scores[priv].mean() - scores[~priv].mean())

    def _difference_batch(self, scores: np.ndarray, ctx: FairnessContext) -> np.ndarray:
        priv = ctx.privileged
        return scores[priv].mean(axis=0) - scores[~priv].mean(axis=0)

    def grad_theta(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None = None,
    ) -> np.ndarray:
        grad = self._favorable_grad(model, ctx, theta)
        priv = ctx.privileged
        return grad[priv].mean(axis=0) - grad[~priv].mean(axis=0)


class EqualOpportunity(FairnessMetric):
    """True-favorable rate difference among rows whose true label is favorable."""

    name = "equal_opportunity"

    def _qualifying(self, ctx: FairnessContext) -> np.ndarray:
        mask = ctx.favorable_true
        if not (mask & ctx.privileged).any() or not (mask & ~ctx.privileged).any():
            raise ValueError(
                "equal opportunity is undefined: a group has no favorable-label rows"
            )
        return mask

    def _difference(self, scores: np.ndarray, ctx: FairnessContext) -> float:
        mask = self._qualifying(ctx)
        priv = ctx.privileged
        return float(scores[mask & priv].mean() - scores[mask & ~priv].mean())

    def _difference_batch(self, scores: np.ndarray, ctx: FairnessContext) -> np.ndarray:
        mask = self._qualifying(ctx)
        priv = ctx.privileged
        return scores[mask & priv].mean(axis=0) - scores[mask & ~priv].mean(axis=0)

    def grad_theta(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None = None,
    ) -> np.ndarray:
        mask = self._qualifying(ctx)
        grad = self._favorable_grad(model, ctx, theta)
        priv = ctx.privileged
        return grad[mask & priv].mean(axis=0) - grad[mask & ~priv].mean(axis=0)


class PredictiveParity(FairnessMetric):
    """PPV difference: P(y = fav | ŷ = fav, privileged) − P(y = fav | ŷ = fav, protected).

    The surrogate replaces the indicator 1[ŷ = fav] with the predicted
    favorable probability, turning each group's PPV into the differentiable
    ratio Σ 1[y=fav]·p / Σ p.
    """

    name = "predictive_parity"

    def value(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None = None,
    ) -> float:
        fav_pred = self._favorable_hard(model, ctx, theta).astype(np.float64)
        return self._ppv_difference(fav_pred, ctx)

    def surrogate(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None = None,
    ) -> float:
        return self._ppv_difference(self._favorable_proba(model, ctx, theta), ctx)

    def value_batch(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        thetas: np.ndarray,
    ) -> np.ndarray:
        if type(self).value is not PredictiveParity.value:
            return np.array([self.value(model, ctx, theta) for theta in thetas])
        fav_pred = self._favorable_hard_many(model, ctx, thetas).astype(np.float64)
        return self._batch_ppv_difference(fav_pred, ctx)

    def surrogate_batch(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        thetas: np.ndarray,
    ) -> np.ndarray:
        if type(self).surrogate is not PredictiveParity.surrogate:
            return np.array([self.surrogate(model, ctx, theta) for theta in thetas])
        return self._batch_ppv_difference(self._favorable_proba_many(model, ctx, thetas), ctx)

    def _batch_ppv_difference(self, scores: np.ndarray, ctx: FairnessContext) -> np.ndarray:
        if _stale_batch_reduction(self, "_ppv_difference", "_ppv_difference_batch"):
            return np.array(
                [self._ppv_difference(scores[:, j], ctx) for j in range(scores.shape[1])]
            )
        return self._ppv_difference_batch(scores, ctx)

    def _ppv_difference(self, scores: np.ndarray, ctx: FairnessContext) -> float:
        fav_true = ctx.favorable_true.astype(np.float64)
        priv = ctx.privileged

        def ppv(mask: np.ndarray) -> float:
            denom = scores[mask].sum()
            return float((fav_true[mask] * scores[mask]).sum() / (denom + _EPS))

        return ppv(priv) - ppv(~priv)

    def _ppv_difference_batch(self, scores: np.ndarray, ctx: FairnessContext) -> np.ndarray:
        fav_true = ctx.favorable_true.astype(np.float64)
        priv = ctx.privileged

        def ppv(mask: np.ndarray) -> np.ndarray:
            denom = scores[mask].sum(axis=0)
            return (fav_true[mask, None] * scores[mask]).sum(axis=0) / (denom + _EPS)

        return ppv(priv) - ppv(~priv)

    def grad_theta(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None = None,
    ) -> np.ndarray:
        scores = self._favorable_proba(model, ctx, theta)
        grads = self._favorable_grad(model, ctx, theta)
        fav_true = ctx.favorable_true.astype(np.float64)
        priv = ctx.privileged

        def ppv_grad(mask: np.ndarray) -> np.ndarray:
            s, g = scores[mask], grads[mask]
            w = fav_true[mask]
            num, denom = (w * s).sum(), s.sum() + _EPS
            grad_num = (w[:, None] * g).sum(axis=0)
            grad_denom = g.sum(axis=0)
            return (grad_num * denom - num * grad_denom) / denom**2

        return ppv_grad(priv) - ppv_grad(~priv)


class AverageOdds(FairnessMetric):
    """Average odds difference: the mean of the favorable-rate gaps among
    truly-favorable and truly-unfavorable rows.

    Equalized odds asks for equal true- and false-positive rates across
    groups; this metric averages the two gaps into one signed violation,
    oriented like every other metric here (positive = privileged favored).
    The paper notes (§2) that Gopher works with any associational notion —
    this one exercises a metric built from *two* conditional rates.
    """

    name = "average_odds"

    def _conditioned(self, ctx: FairnessContext) -> tuple[np.ndarray, np.ndarray]:
        fav, unfav = ctx.favorable_true, ~ctx.favorable_true
        for mask in (fav, unfav):
            if not (mask & ctx.privileged).any() or not (mask & ~ctx.privileged).any():
                raise ValueError(
                    "average odds is undefined: a group is empty under one label"
                )
        return fav, unfav

    def _difference(self, scores: np.ndarray, ctx: FairnessContext) -> float:
        fav, unfav = self._conditioned(ctx)
        priv = ctx.privileged

        def gap(mask: np.ndarray) -> float:
            return float(scores[mask & priv].mean() - scores[mask & ~priv].mean())

        return 0.5 * (gap(fav) + gap(unfav))

    def _difference_batch(self, scores: np.ndarray, ctx: FairnessContext) -> np.ndarray:
        fav, unfav = self._conditioned(ctx)
        priv = ctx.privileged

        def gap(mask: np.ndarray) -> np.ndarray:
            return scores[mask & priv].mean(axis=0) - scores[mask & ~priv].mean(axis=0)

        return 0.5 * (gap(fav) + gap(unfav))

    def grad_theta(
        self,
        model: TwiceDifferentiableClassifier,
        ctx: FairnessContext,
        theta: np.ndarray | None = None,
    ) -> np.ndarray:
        fav, unfav = self._conditioned(ctx)
        grad = self._favorable_grad(model, ctx, theta)
        priv = ctx.privileged

        def gap_grad(mask: np.ndarray) -> np.ndarray:
            return grad[mask & priv].mean(axis=0) - grad[mask & ~priv].mean(axis=0)

        return 0.5 * (gap_grad(fav) + gap_grad(unfav))


_METRICS: dict[str, type[FairnessMetric]] = {
    StatisticalParity.name: StatisticalParity,
    EqualOpportunity.name: EqualOpportunity,
    PredictiveParity.name: PredictiveParity,
    AverageOdds.name: AverageOdds,
}


def get_metric(name: str) -> FairnessMetric:
    """Look up a metric by name (see :func:`list_metrics`)."""
    try:
        return _METRICS[name]()
    except KeyError:
        raise ValueError(f"unknown metric {name!r}; available: {list_metrics()}") from None


def list_metrics() -> list[str]:
    """Names of all registered fairness metrics."""
    return sorted(_METRICS)
