"""Hierarchical tracing for the audit query path.

One :class:`Tracer` records a tree of :class:`Span` objects per thread.
Instrumented code never checks whether tracing is on — it always calls
``trace.span(...)`` / ``trace.add(...)`` through the module-level
helpers, and when tracing is disabled those route to a shared
:class:`NullTracer` whose span object is a reusable no-op.  The disabled
path is therefore one function call plus an empty context manager —
cheap enough to leave in the hot loops permanently (the overhead bound
is asserted by ``tests/obs/test_overhead.py``).

Exports
-------
* ``to_dict()`` — structured JSON (span tree with attributes)
* ``to_chrome_trace()`` — Chrome ``trace_event`` complete events; the
  object form (``{"traceEvents": [...]}``) loads directly in Perfetto,
  which ignores unknown top-level keys
* ``render_tree()`` — time-annotated terminal tree

Span-local attributes are plain key/value pairs.  Numeric costs that
accumulate *during* a span (FLOPs, cache hits, evaluation counts) are
added with :func:`add`, which targets the innermost open span on the
calling thread; :mod:`repro.obs.cost` folds them into per-query
:class:`~repro.obs.cost.CostReport` totals.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from typing import Any

# The single clock every observability consumer shares.  ``Timer``
# (repro.utils.timing) routes through this so benchmark timings and span
# durations are directly comparable.
clock = time.perf_counter

_COST_KEYS = ("gemm_flops", "solve_flops", "evaluations", "cache_hits", "cache_misses")


class Span:
    """One timed node in the trace tree.

    Entering the span starts its clock and makes it the innermost open
    span on the current thread; exiting stops the clock and re-attaches
    the parent.  ``attrs`` holds both keyword attributes given at
    creation and numeric costs accumulated via :meth:`add`.
    """

    __slots__ = ("attrs", "children", "end", "index", "name", "start", "tid", "tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.index = -1
        self.start = 0.0
        self.end = 0.0
        self.tid = 0
        self.children: list[Span] = []

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        self.tracer._push(self)
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self.tracer._pop(self)
        return False

    # -- recording ------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) span attributes."""
        self.attrs.update(attrs)
        return self

    def add(self, key: str, n: float = 1) -> "Span":
        """Accumulate a numeric attribute (e.g. ``gemm_flops``)."""
        self.attrs[key] = self.attrs.get(key, 0) + n
        return self

    # -- inspection -----------------------------------------------------
    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)

    @property
    def self_seconds(self) -> float:
        """Wall time not covered by child spans."""
        return max(0.0, self.seconds - sum(c.seconds for c in self.children))

    def walk(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self, epoch: float) -> dict[str, Any]:
        return {
            "name": self.name,
            "index": self.index,
            "start": self.start - epoch,
            "duration": self.seconds,
            "tid": self.tid,
            "attrs": dict(self.attrs),
            "children": [c.to_dict(epoch) for c in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds:.6f}s, attrs={self.attrs!r})"


class Tracer:
    """Collects spans into per-thread trees with a global monotonic order.

    Thread-safe: each thread keeps its own open-span stack (spans never
    nest across threads), while the span index counter and the finished
    root list are shared.
    """

    enabled = True

    def __init__(self, clock=clock) -> None:
        self.clock = clock
        self.epoch = clock()
        self.epoch_unix = time.time()
        self.roots: list[Span] = []
        self._counter = itertools.count()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._tids: dict[int, int] = {}

    # -- span lifecycle -------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """Create a span; use as ``with tracer.span("name", k=v) as s:``."""
        return Span(self, name, attrs)

    def add(self, key: str, n: float = 1) -> None:
        """Accumulate ``n`` onto the innermost open span, if any."""
        stack = getattr(self._local, "stack", None)
        if stack:
            span = stack[-1]
            span.attrs[key] = span.attrs.get(key, 0) + n

    def current(self) -> Span | None:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        span.index = next(self._counter)
        span.tid = self._tid()
        span.start = self.clock()
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = self.clock()
        stack = self._local.stack
        # Tolerate exceptions unwinding through several spans at once.
        while stack and stack[-1] is not span:
            dangling = stack.pop()
            dangling.end = span.end
        if stack:
            stack.pop()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    def _tid(self) -> int:
        ident = threading.get_ident()
        tid = self._tids.get(ident)
        if tid is None:
            with self._lock:
                tid = self._tids.setdefault(ident, len(self._tids) + 1)
        return tid

    # -- inspection -----------------------------------------------------
    def walk(self):
        for root in self.roots:
            yield from root.walk()

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    # -- exports --------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Structured JSON export: the span forest plus trace metadata."""
        return {
            "schema_version": 1,
            "epoch_unix": self.epoch_unix,
            "span_count": self.span_count(),
            "spans": [root.to_dict(self.epoch) for root in self.roots],
        }

    def to_chrome_trace(self) -> dict[str, Any]:
        """Chrome ``trace_event`` complete ("X") events, Perfetto-loadable."""
        events = []
        for span in sorted(self.walk(), key=lambda s: s.index):
            events.append(
                {
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "ph": "X",
                    "ts": (span.start - self.epoch) * 1e6,
                    "dur": span.seconds * 1e6,
                    "pid": 1,
                    "tid": span.tid,
                    "args": {k: v for k, v in span.attrs.items() if _jsonable(v)},
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export(self) -> dict[str, Any]:
        """Combined export: Chrome events plus the structured span tree.

        Perfetto reads ``traceEvents`` and ignores the extra keys, so one
        file serves both the UI and programmatic consumers.
        """
        out = self.to_chrome_trace()
        out.update(self.to_dict())
        return out

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.export(), default=str, **kwargs)

    def render_tree(self, max_depth: int | None = None) -> str:
        """Time-annotated terminal rendering of the span hierarchy."""
        lines: list[str] = []
        total = sum(r.seconds for r in self.roots) or 1.0
        for root in self.roots:
            self._render(root, "", True, total, lines, max_depth, depth=0, root=True)
        return "\n".join(lines)

    def _render(self, span, prefix, last, total, lines, max_depth, depth, root=False):
        if max_depth is not None and depth > max_depth:
            return
        connector = "" if root else ("└─ " if last else "├─ ")
        attrs = _format_attrs(span.attrs)
        pct = 100.0 * span.seconds / total
        lines.append(
            f"{prefix}{connector}{span.name}{attrs}  "
            f"{span.seconds * 1e3:.2f}ms ({pct:.1f}%)"
        )
        child_prefix = prefix if root else prefix + ("   " if last else "│  ")
        for i, child in enumerate(span.children):
            self._render(
                child, child_prefix, i == len(span.children) - 1,
                total, lines, max_depth, depth + 1,
            )


def _jsonable(value: Any) -> bool:
    return isinstance(value, (bool, int, float, str)) or value is None


def _format_attrs(attrs: dict[str, Any], limit: int = 4) -> str:
    if not attrs:
        return ""
    parts = []
    for key, value in itertools.islice(attrs.items(), limit):
        if isinstance(value, float):
            value = f"{value:.3g}"
        parts.append(f"{key}={value}")
    if len(attrs) > limit:
        parts.append("…")
    return " [" + " ".join(parts) + "]"


class _NullSpan:
    """Shared no-op span: every method returns in O(1) with no allocation."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def add(self, key: str, n: float = 1) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled-mode tracer: hands out the shared :data:`NULL_SPAN`."""

    __slots__ = ()
    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return NULL_SPAN

    def add(self, key: str, n: float = 1) -> None:
        return None

    def current(self) -> None:
        return None


NULL_TRACER = NullTracer()

_current: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The tracer instrumented code is currently routing spans to."""
    return _current


def set_tracer(tracer: Tracer | NullTracer) -> None:
    global _current
    _current = tracer


def enable() -> Tracer:
    """Install and return a fresh recording tracer."""
    tracer = Tracer()
    set_tracer(tracer)
    return tracer


def disable() -> None:
    """Restore the no-op tracer."""
    set_tracer(NULL_TRACER)


def span(name: str, **attrs: Any):
    """Open a span on the current tracer (no-op when tracing is off)."""
    return _current.span(name, **attrs)


def add(key: str, n: float = 1) -> None:
    """Accumulate a cost onto the innermost open span (no-op when off)."""
    _current.add(key, n)


class tracing:
    """``with tracing() as t:`` — record into a fresh tracer, then restore.

    A plain class (not ``contextlib.contextmanager``) so the previous
    tracer is restored even if the body raises through several frames.
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Tracer | NullTracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = get_tracer()
        set_tracer(self.tracer)
        return self.tracer

    def __exit__(self, *exc_info: object) -> bool:
        set_tracer(self._previous if self._previous is not None else NULL_TRACER)
        return False
