"""`repro.obs` — observability for the audit query path.

Three layers, always compiled in, near-free when disabled:

* :mod:`repro.obs.trace` — hierarchical spans over the whole query path
  (``trace.span`` / ``trace.add``), exported as structured JSON, Chrome
  ``trace_event`` (Perfetto-loadable), or a terminal tree;
* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters / gauges / fixed-bucket histograms that the shared caches
  register into, with :class:`StatsView` keeping the historical
  dict-shaped ``stats`` surfaces intact;
* :mod:`repro.obs.cost` — per-query :class:`CostReport` (GEMM/solve
  FLOPs from recorded shapes, influence evaluations, cache hit ratios,
  ``%self`` wall-time breakdown) derived from one query's span subtree.
"""

from repro.obs import trace
from repro.obs.cost import CostLine, CostReport, gemm_flops, solve_flops
from repro.obs.metrics import MetricsRegistry, StatsView
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "CostLine",
    "CostReport",
    "MetricsRegistry",
    "NullTracer",
    "Span",
    "StatsView",
    "Tracer",
    "disable",
    "enable",
    "gemm_flops",
    "get_tracer",
    "set_tracer",
    "solve_flops",
    "trace",
    "tracing",
]
