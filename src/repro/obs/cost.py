"""Per-query cost attribution derived from a span subtree.

The estimators record the shapes of every batched GEMM and multi-RHS
solve as span attributes; this module folds them into FLOP estimates:

* **GEMM** — ``(m × n) @ (n × p)`` costs ``2·m·n·p`` FLOPs, recorded by
  the instrumentation as an accumulated ``gemm_flops`` attribute;
* **solve** — a factorized ``p×p`` system solved against ``k`` right
  hand sides costs ``2·p²·k`` (two triangular sweeps, same count for
  the eigenbasis route), recorded as ``solve_flops``.

Cache hit/miss figures come from ``trace.add("cache_hits", 1)`` calls
at the artifact accessors, and ``evaluations`` counts influence
evaluations (subsets scored).  :meth:`CostReport.from_span` walks one
query's subtree, sums those attributes, and aggregates wall time per
span name with a ``%self`` breakdown (time spent in a span but not in
any of its children) so a profile shows where each query's milliseconds
actually went.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.obs.trace import Span


@dataclass(frozen=True)
class CostLine:
    """Aggregated wall time for one span name within a query subtree."""

    name: str
    count: int
    total_seconds: float
    self_seconds: float
    pct_self: float


@dataclass
class CostReport:
    """Where one query's time, FLOPs, and cache traffic went."""

    name: str = ""
    wall_seconds: float = 0.0
    gemm_flops: float = 0.0
    solve_flops: float = 0.0
    influence_evaluations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    lines: list[CostLine] = field(default_factory=list)

    @property
    def total_flops(self) -> float:
        return self.gemm_flops + self.solve_flops

    @property
    def cache_hit_ratio(self) -> float:
        touched = self.cache_hits + self.cache_misses
        return self.cache_hits / touched if touched else 0.0

    @property
    def leaf_fraction(self) -> float:
        """Fraction of wall time accounted for by leaf spans (no children)."""
        leaf_names = {line.name for line in self.lines if line.total_seconds == line.self_seconds}
        leaf = sum(line.self_seconds for line in self.lines if line.name in leaf_names)
        return leaf / self.wall_seconds if self.wall_seconds else 0.0

    @classmethod
    def from_span(cls, span: Span) -> "CostReport":
        """Fold one query's span subtree into totals and a %self table."""
        totals = {"gemm_flops": 0.0, "solve_flops": 0.0, "evaluations": 0,
                  "cache_hits": 0, "cache_misses": 0}
        per_name: dict[str, list[float]] = {}
        for node in span.walk():
            for key in totals:
                value = node.attrs.get(key)
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    totals[key] += value
            agg = per_name.setdefault(node.name, [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += node.seconds
            agg[2] += node.self_seconds
        wall = span.seconds or 1e-12
        lines = [
            CostLine(
                name=name,
                count=int(count),
                total_seconds=total,
                self_seconds=self_s,
                pct_self=100.0 * self_s / wall,
            )
            for name, (count, total, self_s) in per_name.items()
        ]
        lines.sort(key=lambda line: line.self_seconds, reverse=True)
        return cls(
            name=span.name,
            wall_seconds=span.seconds,
            gemm_flops=totals["gemm_flops"],
            solve_flops=totals["solve_flops"],
            influence_evaluations=int(totals["evaluations"]),
            cache_hits=int(totals["cache_hits"]),
            cache_misses=int(totals["cache_misses"]),
            lines=lines,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "gemm_flops": self.gemm_flops,
            "solve_flops": self.solve_flops,
            "total_flops": self.total_flops,
            "influence_evaluations": self.influence_evaluations,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": self.cache_hit_ratio,
            "lines": [
                {
                    "name": line.name,
                    "count": line.count,
                    "total_seconds": line.total_seconds,
                    "self_seconds": line.self_seconds,
                    "pct_self": line.pct_self,
                }
                for line in self.lines
            ],
        }

    def render(self) -> str:
        """Terminal table: header totals then the per-span %self breakdown."""
        header = (
            f"{self.name or 'query'}: {self.wall_seconds * 1e3:.1f}ms, "
            f"{_flops(self.total_flops)} "
            f"(gemm {_flops(self.gemm_flops)}, solve {_flops(self.solve_flops)}), "
            f"{self.influence_evaluations} influence evaluations, "
            f"cache {self.cache_hits} hit / {self.cache_misses} miss "
            f"({100.0 * self.cache_hit_ratio:.0f}%)"
        )
        rows = [header]
        for line in self.lines:
            rows.append(
                f"  {line.name:<28} x{line.count:<5} "
                f"total {line.total_seconds * 1e3:8.2f}ms  "
                f"self {line.self_seconds * 1e3:8.2f}ms ({line.pct_self:5.1f}%)"
            )
        return "\n".join(rows)


def _flops(value: float) -> str:
    """Human-readable FLOP count (``1.2 GFLOP``)."""
    for unit, scale in (("T", 1e12), ("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if value >= scale:
            return f"{value / scale:.2f} {unit}FLOP"
    return f"{value:.0f} FLOP"


def gemm_flops(m: int, n: int, p: int) -> float:
    """FLOPs of an ``(m × n) @ (n × p)`` matrix product."""
    return 2.0 * m * n * p


def solve_flops(p: int, rhs: int) -> float:
    """FLOPs of solving a factorized ``p×p`` system for ``rhs`` columns."""
    return 2.0 * p * p * rhs
