"""A typed, thread-safe metrics registry for the shared caches.

The registry replaces the ad-hoc counter dicts that ``ModelArtifacts``,
``AlphabetCache``, ``HessianSolver``, and the exact-batch router each
grew independently.  Three metric kinds:

* **counters** — monotonically increasing integers (cache builds,
  routing decisions); incremented under the registry lock, so counts
  stay exact under concurrent serving — this is what retires the lossy
  ``fallback_factors`` increment from the PR 7 worklist;
* **gauges** — last-written values (sizes, versions);
* **histograms** — timing distributions over *fixed* bucket edges, so
  snapshots from different processes are mergeable bucket-by-bucket.

:class:`StatsView` is the compatibility bridge: a dict-shaped view over
one namespace of a registry, so ``artifacts.stats["hessian_builds"]``
and ``dict(cache.stats)`` keep working while the underlying storage
becomes shared, namespaced, and lock-protected.  Counter bumps go
through :meth:`StatsView.inc`, which ``tools/reprolint`` (RL002)
recognises as counter discipline.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from collections.abc import Iterator, MutableMapping
from typing import Any

_DEFAULT_EDGES = (0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10.0)


class _Histogram:
    __slots__ = ("counts", "edges", "observations", "total")

    def __init__(self, edges: tuple[float, ...]) -> None:
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.observations = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.edges, value)] += 1
        self.total += value
        self.observations += 1

    def snapshot(self) -> dict[str, Any]:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.observations,
        }


class MetricsRegistry:
    """Namespaced counters, gauges, and fixed-bucket timing histograms."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, _Histogram] = {}

    # -- counters -------------------------------------------------------
    def register_counter(self, name: str, initial: int = 0) -> None:
        with self._lock:
            self._counters.setdefault(name, initial)

    def inc(self, name: str, n: int = 1) -> int:
        """Atomically add ``n`` to a counter, creating it at zero if new."""
        with self._lock:
            value = self._counters.get(name, 0) + n
            self._counters[name] = value
            return value

    def set_counter(self, name: str, value: int) -> None:
        with self._lock:
            self._counters[name] = value

    def get(self, name: str, default: int | None = None) -> int:
        with self._lock:
            if name in self._counters:
                return self._counters[name]
            if default is None:
                raise KeyError(name)
            return default

    # -- gauges ---------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    # -- histograms -----------------------------------------------------
    def register_histogram(
        self, name: str, edges: tuple[float, ...] = _DEFAULT_EDGES
    ) -> None:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = _Histogram(tuple(edges))

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _Histogram(_DEFAULT_EDGES)
            hist.observe(value)

    # -- export ---------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """A point-in-time copy: ``{"counters", "gauges", "histograms"}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: h.snapshot() for k, h in self._histograms.items()},
            }

    def diff(self, before: dict[str, Any]) -> dict[str, Any]:
        """Counter/gauge deltas and histogram count deltas since ``before``."""
        now = self.snapshot()
        counters = {
            name: value - before.get("counters", {}).get(name, 0)
            for name, value in now["counters"].items()
        }
        gauges = {
            name: value - before.get("gauges", {}).get(name, 0.0)
            for name, value in now["gauges"].items()
        }
        histograms = {}
        for name, snap in now["histograms"].items():
            prev = before.get("histograms", {}).get(name, {})
            histograms[name] = {
                "count": snap["count"] - prev.get("count", 0),
                "sum": snap["sum"] - prev.get("sum", 0.0),
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def to_prometheus_text(self) -> str:
        """Prometheus exposition format (names sanitised ``.`` → ``_``)."""
        lines: list[str] = []
        snap = self.snapshot()
        for name in sorted(snap["counters"]):
            metric = _sanitise(name)
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {snap['counters'][name]}")
        for name in sorted(snap["gauges"]):
            metric = _sanitise(name)
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {snap['gauges'][name]}")
        for name in sorted(snap["histograms"]):
            hist = snap["histograms"][name]
            metric = _sanitise(name)
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for edge, count in zip(hist["edges"], hist["counts"]):
                cumulative += count
                lines.append(f'{metric}_bucket{{le="{edge}"}} {cumulative}')
            cumulative += hist["counts"][-1]
            lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{metric}_sum {hist['sum']}")
            lines.append(f"{metric}_count {hist['count']}")
        return "\n".join(lines) + "\n"


def _sanitise(name: str) -> str:
    return name.replace(".", "_").replace("-", "_")


class StatsView(MutableMapping):
    """Dict-shaped view over one namespace of a :class:`MetricsRegistry`.

    Declared counters are passed as a dict literal (so static counter
    discipline can read them off the AST) and registered under
    ``{namespace}.{key}``; the view exposes them under their short keys,
    preserving every existing ``stats["key"]`` call site.  ``inc`` is the
    thread-safe increment; plain ``view[key] += 1`` still works but is
    read-modify-write and reserved for single-threaded build paths.
    """

    __slots__ = ("_keys", "_namespace", "_registry")

    def __init__(
        self,
        counters: dict[str, int] | None = None,
        *,
        registry: MetricsRegistry | None = None,
        namespace: str = "",
    ) -> None:
        self._registry = registry if registry is not None else MetricsRegistry()
        self._namespace = namespace
        self._keys: list[str] = []
        for key, initial in (counters or {}).items():
            self._keys.append(key)
            self._registry.register_counter(self._full(key), initial)

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    @property
    def namespace(self) -> str:
        return self._namespace

    def _full(self, key: str) -> str:
        return f"{self._namespace}.{key}" if self._namespace else key

    def inc(self, key: str, n: int = 1) -> int:
        """Thread-safe counter bump; registers the key on first use."""
        if key not in self._keys:
            self._keys.append(key)
        return self._registry.inc(self._full(key), n)

    # -- MutableMapping -------------------------------------------------
    def __getitem__(self, key: str) -> int:
        if key not in self._keys:
            raise KeyError(key)
        return self._registry.get(self._full(key), 0)

    def __setitem__(self, key: str, value: int) -> None:
        if key not in self._keys:
            self._keys.append(key)
        self._registry.set_counter(self._full(key), value)

    def __delitem__(self, key: str) -> None:
        raise TypeError("StatsView counters cannot be deleted")

    def __iter__(self) -> Iterator[str]:
        return iter(list(self._keys))

    def __len__(self) -> int:
        return len(self._keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StatsView({dict(self)!r}, namespace={self._namespace!r})"
