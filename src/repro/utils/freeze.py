"""Runtime write-sanitizer for the audit read path.

The static side of the shared-state contract lives in ``tools/reprolint``
(RL001: methods reachable from the read API may not write shared state);
this module is the dynamic side.  :func:`freeze_session` walks a fitted
:class:`~repro.core.AuditSession`'s shared caches — the encoded matrices,
the influence artifacts bundle, the predicate alphabets, the per-group
fairness contexts — and flips every NumPy array it finds to
``writeable=False``.  Any in-place mutation on the read path then raises
``ValueError: assignment destination is read-only`` at the write site,
instead of silently corrupting an answer some other query later reads.

Freezing guards *buffer mutation* only: attribute rebinding (a lazy cache
assigning ``self._x = new_array``) is untouched, which is exactly the
split RL001 polices statically.  Registered edit entry points
(:meth:`AuditSession.apply_edit`) patch shared buffers in place by
design, so the :class:`Freezer` supports thaw → edit → refreeze;
:func:`install_session_sanitizer` wires that protocol onto the session
class for sanitized test runs (``REPRO_SANITIZE=1``).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

#: How deep the attribute/container walk follows object graphs.  The
#: session's shared caches are all within a few hops; the cap keeps the
#: walk from wandering into unrelated object graphs through back-pointers.
_MAX_DEPTH = 6


def iter_arrays(obj: object, depth: int = 0, seen: set[int] | None = None) -> Iterator[np.ndarray]:
    """Yield every ndarray reachable from ``obj`` through dicts, sequences,
    and instance ``__dict__`` attributes (cycle-safe, depth-capped)."""
    if obj is None or depth > _MAX_DEPTH:
        return
    if seen is None:
        seen = set()
    if id(obj) in seen:
        return
    seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        yield obj
        return
    if isinstance(obj, dict):
        for value in obj.values():
            yield from iter_arrays(value, depth + 1, seen)
        return
    if isinstance(obj, (list, tuple, set, frozenset)):
        for value in obj:
            yield from iter_arrays(value, depth + 1, seen)
        return
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        for value in attrs.values():
            yield from iter_arrays(value, depth + 1, seen)


class Freezer:
    """Tracks which arrays were frozen so an edit can thaw exactly those.

    ``freeze`` records each array's prior writeable flag; ``thaw``
    restores it.  Restoring ``writeable=True`` on a view requires its base
    to be writeable at that moment, so ``thaw`` retries in passes until
    the dependency order resolves itself.
    """

    def __init__(self) -> None:
        self._frozen: List[Tuple[np.ndarray, bool]] = []

    def freeze(self, *objects: object) -> "Freezer":
        seen: set[int] = set()
        already = {id(arr) for arr, _ in self._frozen}
        for obj in objects:
            for arr in iter_arrays(obj, seen=seen):
                if id(arr) in already:
                    continue
                already.add(id(arr))
                if arr.flags.writeable:
                    self._frozen.append((arr, True))
                    arr.flags.writeable = False
        return self

    def thaw(self) -> None:
        pending = self._frozen
        self._frozen = []
        for _ in range(4):
            failed: List[Tuple[np.ndarray, bool]] = []
            for arr, flag in pending:
                try:
                    arr.flags.writeable = flag
                except ValueError:
                    failed.append((arr, flag))
            if not failed:
                return
            pending = failed
        raise RuntimeError(
            f"could not restore the writeable flag on {len(pending)} array(s); "
            "a frozen view outlived its base"
        )


def freeze_session(session) -> Freezer:
    """Freeze a fitted session's shared read state; returns the Freezer.

    Covers the encoded matrices, the influence artifacts bundle (gradients,
    Hessian, factorizations, rotation caches, the model's parameters), the
    alphabet cache (predicate masks, packed tidlists), and the cached
    fairness contexts.  Caller-owned raw tables are deliberately not
    walked (``AlphabetCache.table`` / the datasets): the contract covers
    state the *session* serves, not inputs the caller still owns.
    """
    freezer = Freezer()
    freezer.freeze(
        session.X_train,
        session.X_test,
        session.artifacts,
        session._contexts,
    )
    cache = session.alphabet_cache
    if cache is not None:
        freezer.freeze(cache._alphabets)
    return freezer


_INSTALLED = False


def install_session_sanitizer() -> None:
    """Patch :class:`AuditSession` so every fitted session serves frozen state.

    After the patch, ``fit`` warms the configured caches and freezes the
    shared arrays; ``apply_edit`` thaws, runs the registered edit, and
    refreezes (picking up arrays the edit swapped in).  Idempotent;
    activated by the test suite when ``REPRO_SANITIZE=1``.
    """
    global _INSTALLED
    if _INSTALLED:
        return
    _INSTALLED = True

    from repro.core.session import AuditSession

    orig_fit = AuditSession.fit
    orig_apply_edit = AuditSession.apply_edit

    def fit(self, *args, **kwargs):
        out = orig_fit(self, *args, **kwargs)
        self.warm()
        self._freezer = freeze_session(self)
        return out

    def apply_edit(self, edit):
        freezer = getattr(self, "_freezer", None)
        if freezer is not None:
            freezer.thaw()
        try:
            return orig_apply_edit(self, edit)
        finally:
            if freezer is not None:
                self._freezer = freeze_session(self)

    fit.__doc__ = orig_fit.__doc__
    apply_edit.__doc__ = orig_apply_edit.__doc__
    AuditSession.fit = fit
    AuditSession.apply_edit = apply_edit
