"""Shared utilities: seeded randomness, timing, validation, write-sanitizing."""

from repro.utils.freeze import Freezer, freeze_session, install_session_sanitizer
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_binary_labels,
    check_same_length,
)

__all__ = [
    "Freezer",
    "Timer",
    "check_1d",
    "check_2d",
    "check_binary_labels",
    "check_same_length",
    "ensure_rng",
    "freeze_session",
    "install_session_sanitizer",
    "spawn_rngs",
    "timed",
]
