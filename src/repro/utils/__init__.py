"""Shared utilities: seeded randomness, timing, and argument validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer, timed
from repro.utils.validation import (
    check_1d,
    check_2d,
    check_binary_labels,
    check_same_length,
)

__all__ = [
    "Timer",
    "check_1d",
    "check_2d",
    "check_binary_labels",
    "check_same_length",
    "ensure_rng",
    "spawn_rngs",
    "timed",
]
