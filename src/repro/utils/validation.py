"""Array validation helpers shared across the library.

These raise early, with messages that name the offending argument, so that
shape bugs surface at API boundaries instead of deep inside linear algebra.
"""

from __future__ import annotations

import numpy as np


def check_1d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` as a float 1-D ndarray or raise ``ValueError``."""
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    return arr


def check_2d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` as a 2-D ndarray or raise ``ValueError``."""
    arr = np.asarray(array)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-dimensional, got shape {arr.shape}")
    return arr


def check_same_length(a: np.ndarray, b: np.ndarray, names: tuple[str, str] = ("a", "b")) -> None:
    """Raise ``ValueError`` unless ``a`` and ``b`` have equal first dimension."""
    if len(a) != len(b):
        raise ValueError(
            f"{names[0]} and {names[1]} must have the same length, "
            f"got {len(a)} and {len(b)}"
        )


def check_binary_labels(y: np.ndarray, name: str = "y") -> np.ndarray:
    """Return ``y`` as an int array of {0, 1} labels or raise ``ValueError``."""
    arr = check_1d(y, name)
    values = np.unique(arr)
    if not np.all(np.isin(values, (0, 1))):
        raise ValueError(f"{name} must contain only binary labels 0/1, got values {values}")
    return arr.astype(np.int64)
