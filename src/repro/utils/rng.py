"""Random-number-generator helpers.

Everything in the library that needs randomness accepts either an integer
seed, an existing :class:`numpy.random.Generator`, or ``None``.  These helpers
normalize that argument so call sites stay one-liners and experiments stay
reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` produces a freshly seeded generator, an ``int`` a deterministic
    one, and an existing generator is passed through untouched so callers can
    thread one RNG through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Used when an experiment fans out into parallel workloads that must not
    share a random stream (e.g. one RNG per benchmark repetition).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(count)]
