"""Lightweight wall-clock timing used by the benchmark harness."""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.start is not None:
            self.elapsed = time.perf_counter() - self.start


def timed(func: Callable[..., Any], *args: Any, **kwargs: Any) -> tuple[Any, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    with Timer() as timer:
        result = func(*args, **kwargs)
    return result, timer.elapsed
