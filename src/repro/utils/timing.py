"""Lightweight wall-clock timing used by the benchmark harness.

Both helpers read :data:`repro.obs.trace.clock` (``time.perf_counter``),
the same clock the tracer stamps spans with, so benchmark timings and
trace durations are directly comparable.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from repro.obs.trace import clock


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Exception contract: ``elapsed`` is recorded even when the body
    raises — ``__exit__`` always stamps the clock, so a ``try``/
    ``except`` around the ``with`` block can still read how long the
    failed attempt ran.

    Example
    -------
    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self.start is not None:
            self.elapsed = clock() - self.start


def timed(func: Callable[..., Any], *args: Any, **kwargs: Any) -> tuple[Any, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``.

    Exception contract: unlike :class:`Timer`, an exception propagates
    out of ``timed`` *before* the tuple is built, so the caller gets
    neither the partial result nor the elapsed time — wrap the call in
    :class:`Timer` directly when the duration of a failed call matters.
    """
    with Timer() as timer:
        result = func(*args, **kwargs)
    return result, timer.elapsed
