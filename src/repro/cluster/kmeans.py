"""k-means with k-means++ initialization."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_2d


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Parameters
    ----------
    n_clusters:
        Number of clusters k.
    max_iter:
        Cap on Lloyd iterations.
    tol:
        Stop when the total center movement falls below this.
    seed:
        RNG seed for the initialization.
    """

    def __init__(
        self,
        n_clusters: int = 8,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        self.n_clusters = int(n_clusters)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.centers: np.ndarray | None = None
        self.labels: np.ndarray | None = None
        self.inertia: float | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "KMeans":
        X = check_2d(np.asarray(X, dtype=np.float64), "X")
        if len(X) < self.n_clusters:
            raise ValueError(
                f"need at least n_clusters={self.n_clusters} points, got {len(X)}"
            )
        rng = ensure_rng(self.seed)
        centers = self._plus_plus_init(X, rng)
        for _ in range(self.max_iter):
            labels = self._assign(X, centers)
            new_centers = centers.copy()
            for cluster in range(self.n_clusters):
                members = X[labels == cluster]
                if len(members):
                    new_centers[cluster] = members.mean(axis=0)
            movement = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if movement < self.tol:
                break
        self.centers = centers
        self.labels = self._assign(X, centers)
        diffs = X - centers[self.labels]
        self.inertia = float((diffs**2).sum())
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.centers is None:
            raise RuntimeError("KMeans is not fitted")
        X = check_2d(np.asarray(X, dtype=np.float64), "X")
        return self._assign(X, self.centers)

    # ------------------------------------------------------------------
    def _assign(self, X: np.ndarray, centers: np.ndarray) -> np.ndarray:
        distances = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        return distances.argmin(axis=1)

    def _plus_plus_init(self, X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n = len(X)
        centers = [X[rng.integers(n)]]
        for _ in range(1, self.n_clusters):
            dist2 = np.min(
                ((X[:, None, :] - np.asarray(centers)[None, :, :]) ** 2).sum(axis=2), axis=1
            )
            total = dist2.sum()
            if total <= 0:
                centers.append(X[rng.integers(n)])
                continue
            probs = dist2 / total
            centers.append(X[rng.choice(n, p=probs)])
        return np.asarray(centers)
