"""Diagonal-covariance Gaussian mixture fitted with EM."""

from __future__ import annotations

import numpy as np

from repro.cluster.kmeans import KMeans
from repro.utils.validation import check_2d

_VAR_FLOOR = 1e-6


class GaussianMixture:
    """EM for a mixture of axis-aligned Gaussians (k-means initialized).

    Diagonal covariances keep the M-step O(n·d) and are entirely adequate
    for the cluster-then-rank detection pipeline of §6.7.
    """

    def __init__(
        self,
        n_components: int = 8,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = int(n_components)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.seed = seed
        self.weights: np.ndarray | None = None
        self.means: np.ndarray | None = None
        self.variances: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "GaussianMixture":
        X = check_2d(np.asarray(X, dtype=np.float64), "X")
        n, d = X.shape
        if n < self.n_components:
            raise ValueError(f"need at least {self.n_components} points, got {n}")
        km = KMeans(self.n_components, seed=self.seed).fit(X)
        assert km.labels is not None and km.centers is not None
        self.means = km.centers.copy()
        self.variances = np.full((self.n_components, d), X.var(axis=0) + _VAR_FLOOR)
        counts = np.bincount(km.labels, minlength=self.n_components).astype(np.float64)
        self.weights = (counts + 1.0) / (counts + 1.0).sum()

        last_ll = -np.inf
        for _ in range(self.max_iter):
            resp, ll = self._e_step(X)
            self._m_step(X, resp)
            if abs(ll - last_ll) < self.tol * max(abs(last_ll), 1.0):
                break
            last_ll = ll
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        resp, _ = self._e_step(check_2d(np.asarray(X, dtype=np.float64), "X"))
        return resp.argmax(axis=1)

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Per-sample log-likelihood under the mixture."""
        X = check_2d(np.asarray(X, dtype=np.float64), "X")
        log_probs = self._component_log_probs(X)
        return _logsumexp(log_probs, axis=1)

    # ------------------------------------------------------------------
    def _component_log_probs(self, X: np.ndarray) -> np.ndarray:
        assert self.weights is not None and self.means is not None
        assert self.variances is not None
        n, d = X.shape
        out = np.empty((n, self.n_components))
        for k in range(self.n_components):
            var = self.variances[k]
            diff2 = (X - self.means[k]) ** 2 / var
            log_norm = -0.5 * (d * np.log(2 * np.pi) + np.log(var).sum())
            out[:, k] = np.log(self.weights[k]) + log_norm - 0.5 * diff2.sum(axis=1)
        return out

    def _e_step(self, X: np.ndarray) -> tuple[np.ndarray, float]:
        log_probs = self._component_log_probs(X)
        log_total = _logsumexp(log_probs, axis=1)
        resp = np.exp(log_probs - log_total[:, None])
        return resp, float(log_total.sum())

    def _m_step(self, X: np.ndarray, resp: np.ndarray) -> None:
        assert self.means is not None and self.variances is not None
        totals = resp.sum(axis=0) + 1e-12
        self.weights = totals / totals.sum()
        self.means = (resp.T @ X) / totals[:, None]
        for k in range(self.n_components):
            diff2 = (X - self.means[k]) ** 2
            self.variances[k] = (resp[:, k] @ diff2) / totals[k] + _VAR_FLOOR


def _logsumexp(a: np.ndarray, axis: int) -> np.ndarray:
    peak = a.max(axis=axis, keepdims=True)
    return (peak + np.log(np.exp(a - peak).sum(axis=axis, keepdims=True))).squeeze(axis)
