"""Clustering and outlier-detection substrate (scikit-learn replacements).

The §6.7 data-error-detection experiment needs k-means, Gaussian mixtures,
and LocalOutlierFactor; none are available offline, so they are implemented
here from the textbook formulations and unit-tested on data with known
structure.
"""

from repro.cluster.gmm import GaussianMixture
from repro.cluster.kmeans import KMeans
from repro.cluster.lof import local_outlier_factor

__all__ = ["GaussianMixture", "KMeans", "local_outlier_factor"]
