"""Local Outlier Factor (Breunig et al. 2000).

This is the anomaly-detection baseline of §6.7: the paper shows that
LOF fails to flag anchoring-attack poison because the injected points mimic
the local density of genuine data.  Scores follow the scikit-learn
convention: LOF ≈ 1 for inliers, substantially > 1 for outliers.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_2d


def local_outlier_factor(X: np.ndarray, n_neighbors: int = 20) -> np.ndarray:
    """Return the LOF score of every row of ``X``.

    Brute-force O(n²) distances — fine at the dataset sizes the detection
    experiment uses (thousands of rows).
    """
    X = check_2d(np.asarray(X, dtype=np.float64), "X")
    n = len(X)
    if n_neighbors < 1:
        raise ValueError(f"n_neighbors must be >= 1, got {n_neighbors}")
    if n <= n_neighbors:
        raise ValueError(f"need more than n_neighbors={n_neighbors} points, got {n}")

    # Pairwise distances with the diagonal pushed to infinity.
    sq = (X**2).sum(axis=1)
    dist2 = np.maximum(sq[:, None] + sq[None, :] - 2.0 * (X @ X.T), 0.0)
    dist = np.sqrt(dist2)
    np.fill_diagonal(dist, np.inf)

    neighbor_idx = np.argsort(dist, axis=1)[:, :n_neighbors]
    neighbor_dist = np.take_along_axis(dist, neighbor_idx, axis=1)
    k_distance = neighbor_dist[:, -1]

    # reach-dist_k(a, b) = max(k-distance(b), d(a, b))
    reach = np.maximum(neighbor_dist, k_distance[neighbor_idx])
    lrd = n_neighbors / (reach.sum(axis=1) + 1e-12)

    lof = (lrd[neighbor_idx].sum(axis=1) / n_neighbors) / (lrd + 1e-12)
    return lof
