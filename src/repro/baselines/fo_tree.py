"""The FO-tree baseline (paper §6.2).

Train a decision-tree regressor on the first-order influence of every
training point, then read the top-k explanations off the tree: among all
nodes from the root down to depth ``l``, pick the k whose *total* influence
(sum over covered points) is most bias-reducing, and report the
root-to-node predicate paths.

Negated categorical conditions (``X != v``) have no counterpart in Gopher's
pattern language; paths keep them as textual conditions so the comparison
stays faithful to what a tree can express.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.decision_tree import DecisionTreeRegressor, TreeNode
from repro.influence.first_order import FirstOrderInfluence
from repro.tabular import Table


@dataclass
class FOTreeExplanation:
    """One FO-tree explanation: a path, its support, and its influence."""

    conditions: list[str]
    support: float
    size: int
    total_influence: float
    node_depth: int

    def describe(self) -> str:
        path = " ∧ ".join(self.conditions) if self.conditions else "(root)"
        return f"{path}  [sup={self.support:.2%}, ΔF̂={self.total_influence:+.4f}]"


class FOTreeExplainer:
    """Fit the FO-tree and extract top-k path explanations."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 20,
    ) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.tree: DecisionTreeRegressor | None = None
        self._num_rows: int | None = None

    def fit(self, table: Table, influence: FirstOrderInfluence) -> "FOTreeExplainer":
        """Fit the regressor on per-point FO bias influences."""
        if table.num_rows != influence.num_train:
            raise ValueError(
                f"table rows ({table.num_rows}) must match the influence "
                f"estimator's training rows ({influence.num_train})"
            )
        targets = influence.point_influences()
        self.tree = DecisionTreeRegressor(
            max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
        ).fit(table, targets)
        self._num_rows = table.num_rows
        return self

    def top_k(self, k: int = 3) -> list[FOTreeExplanation]:
        """The k most bias-reducing nodes up to the depth cap.

        Negative total influence = removing the node's points reduces bias,
        so nodes are ranked ascending by total influence.  The root itself
        is excluded (it is the whole dataset, not an explanation).
        """
        if self.tree is None or self._num_rows is None:
            raise RuntimeError("explainer is not fitted")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        nodes = [n for n in self.tree.nodes() if n.depth > 0]
        nodes.sort(key=lambda n: n.total)
        out: list[FOTreeExplanation] = []
        for node in nodes[:k]:
            out.append(self._to_explanation(node))
        return out

    def _to_explanation(self, node: TreeNode) -> FOTreeExplanation:
        conditions = []
        for feature, op, value, polarity in node.path:
            if op == "<":
                text = f"{feature} < {value:g}" if polarity else f"{feature} >= {value:g}"
            else:
                text = f"{feature} = {value}" if polarity else f"{feature} != {value}"
            conditions.append(text)
        assert self._num_rows is not None
        return FOTreeExplanation(
            conditions=conditions,
            support=node.size / self._num_rows,
            size=node.size,
            total_influence=float(node.total),
            node_depth=node.depth,
        )
