"""CART regression tree (from scratch) used by the FO-tree baseline.

Variance-reduction splitting on the *original* (un-encoded) feature table:
numeric features get threshold splits (``X < t`` / ``X >= t``), categorical
features get one-vs-rest equality splits (``X = v`` / ``X != v``), which is
exactly the predicate vocabulary the FO-tree baseline needs to report
pattern-like paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tabular import CategoricalColumn, NumericColumn, Table


@dataclass
class TreeNode:
    """One node of the fitted tree.

    ``split_*`` describe the test routed left (``feature op value`` true →
    left child); leaves have ``left is None and right is None``.  ``path``
    is the list of (feature, op, value, polarity) conditions from the root,
    where polarity False negates the condition.
    """

    depth: int
    indices: np.ndarray = field(repr=False)
    value: float = 0.0
    total: float = 0.0
    split_feature: str | None = None
    split_op: str | None = None
    split_value: object | None = None
    left: "TreeNode | None" = None
    right: "TreeNode | None" = None
    path: list[tuple[str, str, object, bool]] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    @property
    def size(self) -> int:
        return len(self.indices)


class DecisionTreeRegressor:
    """Depth-limited CART with variance-reduction splits over a Table."""

    def __init__(
        self,
        max_depth: int = 3,
        min_samples_leaf: int = 20,
        max_thresholds: int = 8,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_thresholds = int(max_thresholds)
        self.root: TreeNode | None = None
        self._table: Table | None = None

    # ------------------------------------------------------------------
    def fit(self, table: Table, targets: np.ndarray) -> "DecisionTreeRegressor":
        targets = np.asarray(targets, dtype=np.float64)
        if len(targets) != table.num_rows:
            raise ValueError(
                f"targets length {len(targets)} != table rows {table.num_rows}"
            )
        self._table = table
        self._targets = targets
        indices = np.arange(table.num_rows)
        self.root = self._build(indices, depth=0, path=[])
        return self

    def predict(self, table: Table) -> np.ndarray:
        """Predict the leaf mean for each row of ``table``."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        out = np.empty(table.num_rows)
        for i in range(table.num_rows):
            out[i] = self._predict_row(table, i)
        return out

    def nodes(self) -> list[TreeNode]:
        """All nodes in breadth-first order (root first)."""
        if self.root is None:
            raise RuntimeError("tree is not fitted")
        queue, out = [self.root], []
        while queue:
            node = queue.pop(0)
            out.append(node)
            if node.left is not None:
                queue.append(node.left)
            if node.right is not None:
                queue.append(node.right)
        return out

    # ------------------------------------------------------------------
    def _build(
        self, indices: np.ndarray, depth: int, path: list[tuple[str, str, object, bool]]
    ) -> TreeNode:
        assert self._table is not None
        y = self._targets[indices]
        node = TreeNode(
            depth=depth,
            indices=indices,
            value=float(y.mean()),
            total=float(y.sum()),
            path=list(path),
        )
        if depth >= self.max_depth or len(indices) < 2 * self.min_samples_leaf:
            return node
        split = self._best_split(indices)
        if split is None:
            return node
        feature, op, value, left_mask = split
        node.split_feature, node.split_op, node.split_value = feature, op, value
        left_idx = indices[left_mask]
        right_idx = indices[~left_mask]
        node.left = self._build(left_idx, depth + 1, path + [(feature, op, value, True)])
        node.right = self._build(right_idx, depth + 1, path + [(feature, op, value, False)])
        return node

    def _best_split(
        self, indices: np.ndarray
    ) -> tuple[str, str, object, np.ndarray] | None:
        assert self._table is not None
        y = self._targets[indices]
        base_sse = float(((y - y.mean()) ** 2).sum())
        best_gain = 1e-12
        best: tuple[str, str, object, np.ndarray] | None = None
        sub = self._table.take(indices)
        for name in sub.column_names:
            column = sub.column(name)
            if isinstance(column, NumericColumn):
                candidates = np.unique(
                    np.quantile(column.values, np.linspace(0.1, 0.9, self.max_thresholds))
                )
                for threshold in candidates:
                    mask = column.less_mask(float(threshold))
                    gain = self._gain(y, mask, base_sse)
                    if gain > best_gain:
                        best_gain = gain
                        best = (name, "<", float(threshold), mask)
            else:
                assert isinstance(column, CategoricalColumn)
                for value in column.distinct():
                    mask = column.equals_mask(value)
                    gain = self._gain(y, mask, base_sse)
                    if gain > best_gain:
                        best_gain = gain
                        best = (name, "=", value, mask)
        return best

    def _gain(self, y: np.ndarray, left_mask: np.ndarray, base_sse: float) -> float:
        n_left = int(left_mask.sum())
        n_right = len(y) - n_left
        if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
            return -np.inf
        left, right = y[left_mask], y[~left_mask]
        sse = float(((left - left.mean()) ** 2).sum() + ((right - right.mean()) ** 2).sum())
        return base_sse - sse

    def _predict_row(self, table: Table, row: int) -> float:
        assert self.root is not None
        node = self.root
        while not node.is_leaf:
            assert node.split_feature is not None
            column = table.column(node.split_feature)
            if node.split_op == "<":
                assert isinstance(column, NumericColumn)
                goes_left = bool(column.values[row] < float(node.split_value))  # type: ignore[arg-type]
            else:
                goes_left = bool(column.equals_mask(node.split_value)[row])
            node = node.left if goes_left else node.right  # type: ignore[assignment]
            assert node is not None
        return node.value
