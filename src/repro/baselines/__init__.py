"""Baseline explainers the paper compares against.

The paper's competitor (§6.2) is **FO-tree**: fit a decision-tree regressor
on the first-order influence of each training point, then read explanations
off the tree — each root-to-node path is a conjunction of predicates, and
the k nodes with the largest total influence (up to a depth cap) become the
top-k explanations.  scikit-learn is unavailable offline, so
:mod:`repro.baselines.decision_tree` provides a from-scratch CART regressor.
"""

from repro.baselines.decision_tree import DecisionTreeRegressor, TreeNode
from repro.baselines.fo_tree import FOTreeExplainer, FOTreeExplanation

__all__ = [
    "DecisionTreeRegressor",
    "FOTreeExplainer",
    "FOTreeExplanation",
    "TreeNode",
]
